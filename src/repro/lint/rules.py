"""AST implementation of the determinism lint rules.

One :class:`ast.NodeVisitor` pass per file.  Import aliases are resolved
first (``import numpy as np`` / ``from functools import lru_cache as lc``)
so the rules match the *canonical* dotted name being called, not its local
spelling.  Every rule id, severity, and example lives in
``docs/static-analysis.md``.

Suppression comments are handled by the shared
:class:`repro.lint.suppress.SuppressionIndex`; a ``DET``-prefixed
suppression that no longer matches any finding is reported here as a
stale-suppression ``SUP001`` WARNING.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.lint.suppress import STALE_RULE, SuppressionIndex

#: ``random`` module-level functions that draw from (or reseed) the hidden
#: global RNG — the call-order dependence that breaks byte-identical
#: parallel campaigns.
_RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Legacy ``numpy.random`` module-level functions (the global RandomState);
#: ``numpy.random.default_rng(seed)`` and ``Generator`` methods are fine.
_NUMPY_RANDOM_GLOBAL_FNS = frozenset({
    "beta", "binomial", "choice", "exponential", "gamma", "get_state",
    "lognormal", "normal", "permutation", "poisson", "rand", "randint",
    "randn", "random", "random_sample", "ranf", "sample", "seed",
    "set_state", "shuffle", "standard_normal", "uniform",
})

_UNBOUNDED_CACHES = frozenset({"functools.lru_cache", "functools.cache"})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
})

_MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Identifier segments that mark an operand as a computed runtime.
_TIMING_SEGMENTS = frozenset({
    "t", "time", "times", "runtime", "runtimes", "latency", "latencies",
    "seconds", "secs", "elapsed", "duration", "durations",
})

def _dotted_name(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


def _terminal_identifier(node: ast.expr) -> str | None:
    """The last identifier of an operand (``x.t_fwd`` → ``t_fwd``,
    ``measure()`` → ``measure``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_timing_name(name: str | None) -> bool:
    if not name:
        return False
    return any(seg in _TIMING_SEGMENTS for seg in name.lower().split("_"))


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, suppress: SuppressionIndex) -> None:
        self.path = path
        self.suppress = suppress
        #: local alias -> canonical dotted module/name prefix.
        self.aliases: dict[str, str] = {}
        self.found: list[Diagnostic] = []

    # -- plumbing ----------------------------------------------------------

    def _suppressed(self, lineno: int, rule: str) -> bool:
        return self.suppress.is_suppressed(lineno, rule)

    def _report(
        self, node: ast.AST, rule: str, severity: Severity, message: str,
        hint: str = "",
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        if self._suppressed(lineno, rule):
            return
        self.found.append(
            Diagnostic(rule, severity, f"{self.path}:{lineno}", message, hint)
        )

    def _canonical(self, node: ast.expr) -> str | None:
        """Resolve a name expression through the import aliases."""
        parts = _dotted_name(node)
        if parts is None:
            return None
        head = self.aliases.get(parts[0])
        if head is None:
            return None
        return ".".join([head, *parts[1:]])

    # -- import tracking ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = canonical
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- DET001 / DET002 / DET005: hazardous calls -------------------------

    def _check_callable_ref(self, node: ast.expr) -> None:
        canonical = self._canonical(node)
        if canonical is None:
            return
        module, _, fn = canonical.rpartition(".")
        if module == "random" and fn in _RANDOM_GLOBAL_FNS:
            self._report(
                node, "DET001", Severity.ERROR,
                f"call to the unseeded global RNG: {canonical}()",
                hint="derive a seed from the measurement identity via "
                "repro.hardware.noise.point_seed / stable_seed and use "
                "numpy.random.default_rng(seed) or random.Random(seed)",
            )
        elif module == "numpy.random" and fn in _NUMPY_RANDOM_GLOBAL_FNS:
            self._report(
                node, "DET001", Severity.ERROR,
                f"call to numpy's global RandomState: {canonical}()",
                hint="use numpy.random.default_rng(seed) with a "
                "point_seed-derived seed; global-state draws depend on "
                "call order and break parallel determinism",
            )
        elif canonical in _UNBOUNDED_CACHES:
            self._report(
                node, "DET002", Severity.ERROR,
                f"{canonical} is unbounded/unobservable memoisation",
                hint="use repro.caching.LRUCache: a hard maxsize plus "
                "hit/miss/eviction counters campaigns can report",
            )
        elif canonical in _WALL_CLOCK:
            self._report(
                node, "DET005", Severity.ERROR,
                f"wall-clock read {canonical}() in a measurement path",
                hint="simulated measurements must be functions of the "
                "point identity; for elapsed-time observability use "
                "time.perf_counter",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_callable_ref(node.func)
        self._check_lstsq(node)
        self.generic_visit(node)

    # -- DET006: lstsq without an explicit rcond ---------------------------

    def _check_lstsq(self, node: ast.Call) -> None:
        if self._canonical(node.func) != "numpy.linalg.lstsq":
            return
        # rcond is the third positional parameter; either spelling counts
        # as explicit.
        explicit = len(node.args) >= 3 or any(
            kw.arg == "rcond" for kw in node.keywords
        )
        if not explicit:
            self._report(
                node, "DET006", Severity.WARN,
                "numpy.linalg.lstsq call without an explicit rcond=",
                hint="pass rcond=None (or a chosen cutoff); the default "
                "rank-truncation threshold changed across numpy versions, "
                "so the implicit value silently alters fitted coefficients",
            )

    def _check_decorators(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for dec in node.decorator_list:
            # Bare `@lru_cache` never passes through visit_Call.
            if not isinstance(dec, ast.Call):
                self._check_callable_ref(dec)

    # -- DET004: mutable default arguments ---------------------------------

    def _is_mutable_default(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_DEFAULT_CALLS
        return False

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_default(default):
                self._report(
                    default, "DET004", Severity.ERROR,
                    f"mutable default argument in {node.name}()",
                    hint="default to None and create the object inside "
                    "the function; shared defaults leak state between "
                    "calls",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_decorators(node)
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_decorators(node)
        self._check_defaults(node)
        self.generic_visit(node)

    # -- DET003: float equality on computed runtimes -----------------------

    def _is_float_hazard_operand(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            # `x == 0.0` is the exact-degenerate-value guard idiom
            # (zero variance, zero span); only nonzero literals are
            # genuinely tolerance-sensitive.
            return node.value != 0.0
        return _is_timing_name(_terminal_identifier(node))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if self._is_float_hazard_operand(left) or (
                self._is_float_hazard_operand(right)
            ):
                self._report(
                    node, "DET003", Severity.WARN,
                    "exact ==/!= comparison involving a float or a "
                    "computed runtime",
                    hint="use math.isclose / a tolerance; exact float "
                    "equality on measured times is platform-dependent",
                )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text; most severe findings first."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "DET000", Severity.ERROR,
                f"{path}:{exc.lineno or 1}",
                f"syntax error: {exc.msg}",
            )
        ]
    suppress = SuppressionIndex(source)
    linter = _FileLinter(path, suppress)
    linter.visit(tree)
    linter.found.extend(suppress.stale_diagnostics(path, ("DET",)))
    return sort_diagnostics(linter.found)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f, None)
        else:
            seen.setdefault(p, None)
    return list(seen)


def lint_paths(paths: Iterable[str | Path]) -> tuple[list[Diagnostic], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(diagnostics, n_files)`` so callers can report how much was
    actually scanned (an empty directory is "clean" in a useless way).
    Missing paths are reported as ``DET000`` errors rather than raised, so
    a typo in CI fails the job with a diagnostic instead of a traceback.
    """
    found: list[Diagnostic] = []
    files = iter_python_files(paths)
    n_files = 0
    for f in files:
        try:
            source = f.read_text()
        except OSError as exc:
            found.append(
                Diagnostic(
                    "DET000", Severity.ERROR, str(f),
                    f"cannot read file: {exc}",
                )
            )
            continue
        n_files += 1
        found.extend(lint_source(source, str(f)))
    return sort_diagnostics(found), n_files


@dataclass(frozen=True)
class LintRule:
    """Registry record of one lint rule (the docs catalogue renders these)."""

    rule: str
    severity: Severity
    title: str


LINT_RULES: tuple[LintRule, ...] = (
    LintRule("DET000", Severity.ERROR, "unparseable/unreadable file"),
    LintRule("DET001", Severity.ERROR,
             "unseeded global random / numpy.random call"),
    LintRule("DET002", Severity.ERROR,
             "functools.lru_cache / cache instead of bounded LRUCache"),
    LintRule("DET003", Severity.WARN,
             "float ==/!= on computed runtimes"),
    LintRule("DET004", Severity.ERROR, "mutable default argument"),
    LintRule("DET005", Severity.ERROR,
             "wall-clock read in a measurement path"),
    LintRule("DET006", Severity.WARN,
             "numpy.linalg.lstsq without an explicit rcond="),
    LintRule(STALE_RULE, Severity.WARN,
             "stale repro-lint suppression comment"),
)
