"""Determinism-hazard linter for this repository's own code.

PR 1 made byte-identical parallel campaigns a core guarantee: every noise
draw is seeded from measurement identity (``hardware/noise.py::point_seed``)
and every memo is a bounded, observable ``repro.caching.LRUCache``.  Nothing
*static* kept it that way — until this package.  It is a custom AST pass
(stdlib :mod:`ast`, no third-party dependency) with rules tuned to the
specific hazards that would silently break reproducibility or scalability:

* ``DET001`` — unseeded module-level ``random`` / ``numpy.random`` calls
* ``DET002`` — ``functools.lru_cache`` / ``functools.cache`` (unbounded or
  unobservable memoisation)
* ``DET003`` — float ``==`` / ``!=`` on computed runtimes
* ``DET004`` — mutable default arguments
* ``DET005`` — wall-clock reads (``time.time`` / ``datetime.now``) in
  measurement paths
* ``DET006`` — ``numpy.linalg.lstsq`` without an explicit ``rcond=``
  (the silent rank-truncation default differs across numpy versions)

Findings are :class:`repro.diagnostics.Diagnostic` records located by
``file:line``.  Suppress a finding with a trailing
``# repro-lint: disable=DET00X`` comment on the offending line; a
suppression whose rule no longer fires is itself reported as ``SUP001``
(see :mod:`repro.lint.suppress`, shared with the concurrency analyzer in
:mod:`repro.analysis.concurrency`).
"""

from repro.lint.rules import (
    LINT_RULES,
    LintRule,
    lint_paths,
    lint_source,
)
from repro.lint.suppress import STALE_RULE, SuppressionIndex
from repro.diagnostics import Diagnostic, Severity

__all__ = [
    "Diagnostic",
    "Severity",
    "LintRule",
    "LINT_RULES",
    "STALE_RULE",
    "SuppressionIndex",
    "lint_paths",
    "lint_source",
]
