"""Shared suppression-comment machinery for the source linters.

Both AST-based linters — the determinism linter (:mod:`repro.lint.rules`,
``DET0xx``) and the concurrency-hazard analyzer
(:mod:`repro.analysis.concurrency`, ``CON0xx``) — silence a finding with
the same trailing comment on the report line::

    start = time.time()  # repro-lint: disable=DET005

This module owns that convention so the two fronts cannot drift:

* :class:`SuppressionIndex` parses one file's *genuine* comment tokens
  (via :mod:`tokenize`, so a suppression spelled inside a docstring or
  string literal — as in documentation examples — does not count) and
  answers ``is_suppressed(lineno, rule)`` queries;
* every successful query is recorded, and :meth:`SuppressionIndex.stale`
  reports the entries that never matched a finding — a suppression whose
  rule no longer fires is a lie about the code and is itself reported as
  a ``SUP001`` WARNING by whichever linter owns the rule prefix.

Each linter passes its own rule prefix(es) to the stale check, so a
``disable=CON008`` comment is only judged by the concurrency analyzer and
``disable=DET005`` only by the determinism linter — a file can carry both
without cross-domain noise.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.diagnostics import Diagnostic, Severity

#: The suppression comment syntax; multiple rules separate with commas.
SUPPRESS_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")

#: Rule id of the stale-suppression finding (shared framework rule).
STALE_RULE = "SUP001"


def iter_comment_tokens(source: str) -> list[tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenisation failures (the linters report those as parse errors under
    their own ``xxx000`` rule) yield whatever comments were seen before
    the failure — never an exception.
    """
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


class SuppressionIndex:
    """Per-file index of ``# repro-lint: disable=RULE`` comments."""

    def __init__(self, source: str) -> None:
        self._rules_by_line: dict[int, set[str]] = {}
        self._used: set[tuple[int, str]] = set()
        for lineno, comment in iter_comment_tokens(source):
            match = SUPPRESS_PATTERN.search(comment)
            if match:
                rules = {
                    r.strip()
                    for r in match.group(1).split(",")
                    if r.strip()
                }
                if rules:
                    self._rules_by_line.setdefault(lineno, set()).update(
                        rules
                    )

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        """True when ``rule`` is disabled on ``lineno``; marks the entry
        as used so it will not be reported stale."""
        if rule in self._rules_by_line.get(lineno, ()):
            self._used.add((lineno, rule))
            return True
        return False

    def stale(self, prefixes: tuple[str, ...]) -> list[tuple[int, str]]:
        """``(lineno, rule)`` entries matching ``prefixes`` that never
        suppressed a finding, in line order."""
        found = []
        for lineno, rules in sorted(self._rules_by_line.items()):
            for rule in sorted(rules):
                if rule.startswith(prefixes) and (
                    (lineno, rule) not in self._used
                ):
                    found.append((lineno, rule))
        return found

    def stale_diagnostics(
        self, path: str, prefixes: tuple[str, ...]
    ) -> list[Diagnostic]:
        """The ``SUP001`` findings for this file, respecting an explicit
        ``disable=SUP001`` on the stale comment's own line."""
        diags = []
        for lineno, rule in self.stale(prefixes):
            if self.is_suppressed(lineno, STALE_RULE):
                continue
            diags.append(
                Diagnostic(
                    STALE_RULE,
                    Severity.WARN,
                    f"{path}:{lineno}",
                    f"stale suppression: rule {rule} never fires on "
                    "this line",
                    hint="the hazard was fixed or the id is a typo — "
                    "delete the comment so real suppressions stay "
                    "auditable",
                )
            )
        return diags


__all__ = [
    "SUPPRESS_PATTERN",
    "STALE_RULE",
    "SuppressionIndex",
    "iter_comment_tokens",
]
