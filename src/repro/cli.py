"""Command-line interface.

Mirrors how the paper's tooling would be used operationally::

    repro models                               # list the zoo
    repro verify --all-zoo                     # static graph IR checks
    repro lint src/repro                       # determinism-hazard linter
    repro lint --domain concurrency src/repro  # lock-discipline race linter
    repro campaign --scenario inference -o data.json
    repro campaign --scenario inference --workers 8 \
                   --store runs/gpu --resume -o data.json
    repro devices                              # presets + execution backends
    repro campaign --scenario training --backend edge -o edge.json
    repro trace alexnet --format chrome -o trace.json
    repro transform resnet18 --diff          # inference fusion pipeline
    repro campaign --scenario training --trace trace.json -o data.json
    repro fit --data data.json --kind forward -o model.json
    repro audit model.json --data data.json    # fitted-model auditor
    repro predict --model model.json --network resnet50 \
                  --image 224 --batch 64
    repro leaderboard --fast -o BENCH_leaderboard.json
    repro experiment table1                    # regenerate a paper artefact

Every subcommand is a thin shell over the library API; nothing here is
logic of its own.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines.eval import (
    PREDICTOR_NAMES as _LEADERBOARD_PREDICTORS,
    SCENARIO_NAMES as _LEADERBOARD_SCENARIOS,
)
from repro.benchdata import (
    CampaignSpec,
    CampaignStore,
    Dataset,
    run_campaign,
)
from repro.benchdata.campaign import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_IMAGE_SIZES,
    DEFAULT_MODELS,
)
from repro.benchdata.records import ConvNetFeatures
from repro.core.epoch import epoch_time, total_training_time
from repro.core.forward import ForwardModel
from repro.core.persistence import load_model, save_model
from repro.core.training import TrainingStepModel
from repro.hardware.backend import BACKEND_REGISTRY, get_backend
from repro.hardware.device import DEVICE_PRESETS, get_device
from repro.hardware.roofline import zoo_profile
from repro.zoo import available_models, get_entry
from repro.zoo.blocks import BLOCK_CATALOGUE

_EXPERIMENTS = {
    "fig1": "repro.experiments.fig1:run_fig1",
    "fig2": "repro.experiments.fig2:run_fig2",
    "table1": "repro.experiments.table1:run_table1",
    "table2": "repro.experiments.table2:run_table2",
    "fig6": "repro.experiments.fig6:run_fig6",
    "table3-single": "repro.experiments.table3_single:run_table3_single",
    "table3-distributed": (
        "repro.experiments.table3_distributed:run_table3_distributed"
    ),
    "fig8": "repro.experiments.fig8:run_fig8",
    "fig9": "repro.experiments.fig9:run_fig9",
    "table4": "repro.experiments.table4:run_table4",
    "strong-scaling": (
        "repro.experiments.strong_scaling:run_strong_scaling"
    ),
}


def _cmd_models(_args: argparse.Namespace) -> int:
    print(f"{'name':22s}{'display':18s}{'family':12s}{'min image':>9s}")
    for name in available_models():
        entry = get_entry(name)
        print(
            f"{name:22s}{entry.display:18s}{entry.family:12s}"
            f"{entry.min_image_size:9d}"
        )
    return 0


def _cmd_blocks(_args: argparse.Namespace) -> int:
    print(f"{'block':22s}{'source model':20s}{'scope'}")
    for spec in BLOCK_CATALOGUE:
        print(f"{spec.name:22s}{spec.model:20s}{spec.scope}")
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    if args.format == "json":
        import json

        payload = {
            "devices": [
                {
                    "name": name,
                    "kind": dev.kind,
                    "peak_flops": dev.peak_flops,
                    "mem_bandwidth": dev.mem_bandwidth,
                    "memory_bytes": dev.memory_bytes,
                    "precision_modes": list(dev.precision_modes),
                }
                for name, dev in DEVICE_PRESETS.items()
            ],
            "backends": [
                {
                    "name": info.name,
                    "summary": info.summary,
                    **get_backend(info.name).capabilities(),
                }
                for info in BACKEND_REGISTRY.values()
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'name':24s}{'kind':6s}{'peak TFLOP/s':>13s}{'BW GB/s':>9s}"
          f"{'memory GB':>10s}  {'precision'}")
    for name, dev in DEVICE_PRESETS.items():
        print(
            f"{name:24s}{dev.kind:6s}{dev.peak_flops / 1e12:13.1f}"
            f"{dev.mem_bandwidth / 1e9:9.0f}{dev.memory_bytes / 1e9:10.0f}"
            f"  {','.join(dev.precision_modes)}"
        )
    print()
    print(f"{'backend':10s}{'default device':18s}{'precision':10s}"
          f"{'eff TFLOP/s':>12s}{'eff GB/s':>9s}{'avail GB':>9s}  summary")
    for info in BACKEND_REGISTRY.values():
        caps = get_backend(info.name).capabilities()
        print(
            f"{info.name:10s}{caps['device']:18s}{caps['precision']:10s}"
            f"{caps['peak_flops'] / 1e12:12.1f}"
            f"{caps['mem_bandwidth'] / 1e9:9.0f}"
            f"{caps['memory_available_bytes'] / 1e9:9.0f}  {info.summary}"
        )
    return 0


def _resolve_device(name: str | None, backend: str):
    """CLI device resolution: an explicit ``--device`` wins; otherwise the
    backend's registered default device (so ``--backend edge`` targets the
    Jetson preset without extra flags), falling back to the A100."""
    if name is not None:
        return get_device(name)
    if backend:
        return BACKEND_REGISTRY[backend].default_device
    return get_device("a100-80gb")


def _campaign_spec(args: argparse.Namespace) -> CampaignSpec:
    """Build the engine spec an invocation describes (defaults mirror the
    paper's per-scenario sweeps)."""
    device = _resolve_device(args.device, args.backend)
    if args.scenario == "blocks":
        # Block campaigns sweep the Table 2 catalogue, not the zoo.
        models: tuple[str, ...] = ()
    else:
        models = tuple(args.models) if args.models else DEFAULT_MODELS
    if args.scenario == "distributed":
        batch_sizes: tuple[int, ...] = (16, 32, 64, 128, 256)
        image_sizes: tuple[int, ...] = (64, 128, 192)
    else:
        batch_sizes = DEFAULT_BATCH_SIZES
        image_sizes = DEFAULT_IMAGE_SIZES
    return CampaignSpec(
        scenario=args.scenario,
        models=models,
        device=device,
        batch_sizes=batch_sizes,
        image_sizes=image_sizes,
        seed=args.seed,
        max_seconds=args.max_seconds,
        node_counts=tuple(args.nodes),
        transform="inference" if args.fuse else "",
        backend=args.backend,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.trace import Tracer, write_chrome

    spec = _campaign_spec(args)
    verify = "strict" if args.strict else ("off" if args.no_verify else "warn")
    store = (
        CampaignStore.open(args.store, spec, resume=args.resume)
        if args.store
        else None
    )
    tracer = Tracer() if args.trace else None
    try:
        result = run_campaign(
            spec, workers=args.workers, store=store, verify=verify,
            tracer=tracer,
        )
    finally:
        if store is not None:
            store.close()
    data = result.dataset
    data.to_json(args.out)
    print(f"wrote {len(data)} records to {args.out} ({data.summary()})")
    print(result.stats.summary())
    if tracer is not None:
        n_events = write_chrome(tracer, args.trace)
        print(f"wrote {n_events} trace events to {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.hardware.memory import OutOfDeviceMemory
    from repro.trace import chrome_json, render_tree, to_json
    from repro.trace.run import trace_model

    if args.model not in available_models():
        print(
            f"trace: unknown model {args.model!r}; see `repro models`",
            file=sys.stderr,
        )
        return 2
    try:
        tracer = trace_model(
            args.model,
            _resolve_device(args.device, args.backend),
            image_size=args.image,
            batch=args.batch,
            phase=args.phase,
            nodes=args.nodes,
            gpus_per_node=args.gpus_per_node,
            seed=args.seed,
            fuse=args.fuse,
            backend=args.backend,
        )
    except OutOfDeviceMemory as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 1
    if args.format == "tree":
        text = render_tree(tracer)
    elif args.format == "json":
        text = to_json(tracer)
    else:
        text = chrome_json(tracer)
    if args.out:
        Path(args.out).write_text(text + "\n")
        spans = sum(1 for root in tracer.roots for _ in root.walk())
        print(f"wrote {spans} spans ({args.format}) to {args.out}")
    else:
        print(text)
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    from repro.graph.metrics import summarize_costs
    from repro.graph.passes import build_pipeline, default_inference_pipeline
    from repro.zoo import build_model

    if args.model not in available_models():
        print(
            f"transform: unknown model {args.model!r}; see `repro models`",
            file=sys.stderr,
        )
        return 2
    image = max(args.image, get_entry(args.model).min_image_size)
    graph = build_model(args.model, image)
    try:
        pipeline = (
            build_pipeline(tuple(args.passes), name="custom")
            if args.passes
            else default_inference_pipeline()
        )
    except KeyError as exc:
        print(f"transform: {exc.args[0]}", file=sys.stderr)
        return 2
    result = pipeline.run(graph)

    print(f"{args.model}@{image}: pipeline {pipeline.name!r} "
          f"(fingerprint {pipeline.fingerprint()})")
    for res in result.results:
        print(
            f"  {res.pass_name:22s}{res.nodes_before:4d} -> "
            f"{res.nodes_after:4d} nodes  ({res.changed} rewrites)"
        )
    before = summarize_costs(graph)
    after = summarize_costs(result.graph)
    print(f"  {'metric':14s}{'before':>16s}{'after':>16s}")
    for label, attr in (
        ("FLOPs (F)", "flops"),
        ("conv in (I)", "conv_input_elems"),
        ("conv out (O)", "conv_output_elems"),
        ("weights (W)", "weights"),
        ("layers (L)", "layers"),
        ("activations", "total_output_elems"),
    ):
        print(f"  {label:14s}{getattr(before, attr):16,d}"
              f"{getattr(after, attr):16,d}")
    if args.diff:
        renames = result.renames()
        removed = result.removed()
        print(f"  fused layers ({len(renames)}):")
        for fused, sources in sorted(renames.items()):
            print(f"    {' + '.join(sources)} -> {fused}")
        if removed:
            print(f"  removed dead layers ({len(removed)}): "
                  + ", ".join(removed))
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import ModelAuditError
    from repro.core.persistence import load_audit_block

    data = Dataset.from_json(args.data)
    if args.backend is not None:
        data = data.for_backend(args.backend)
        if not len(data):
            print(
                f"fit: no records measured under backend "
                f"{args.backend or 'roofline'!r} in {args.data}",
                file=sys.stderr,
            )
            return 2
    if args.exclude:
        data = data.excluding_model(args.exclude)
    model = (
        ForwardModel(method=args.method)
        if args.kind == "forward"
        else TrainingStepModel(method=args.method)
    )
    model.fit(data)
    try:
        save_model(model, args.out, audit=args.audit)
    except ModelAuditError as exc:
        for diag in exc.diagnostics:
            print(diag.render())
        print(f"fit: refusing to save {args.out} (--audit strict): {exc}")
        return 1
    metrics = model.evaluate(data)
    print(f"fitted {args.kind} model on {len(data)} records: {metrics}")
    block = load_audit_block(args.out)
    if block is not None:
        print(
            f"audit: {block['errors']} errors, {block['warnings']} warnings "
            "(embedded in the model JSON; see `repro audit`)"
        )
    print(f"saved to {args.out}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.analysis.audit import audit_model
    from repro.core.persistence import load_audit_block, load_model
    from repro.diagnostics import (
        Diagnostic,
        Severity,
        has_errors,
        render_json,
        render_text,
    )

    data = Dataset.from_json(args.data) if args.data else None
    ignored = set(args.ignore)
    diags = []
    for path in args.models:
        model = load_model(path)
        if data is not None:
            found = audit_model(model, data, ignore=args.ignore)
        else:
            block = load_audit_block(path)
            if block is not None:
                # Replay the audit embedded at save time — it was computed
                # with the full design matrix, which a bare JSON no longer
                # carries.
                found = [
                    Diagnostic(
                        d["rule"], Severity[d["severity"]], d["location"],
                        d["message"], d["hint"],
                    )
                    for d in block["diagnostics"]
                    if d["rule"] not in ignored
                ]
            else:
                found = audit_model(model, ignore=args.ignore)
        diags.extend(
            replace(d, location=f"{path}:{d.location}") for d in found
        )
    if args.format == "json":
        print(render_json(diags, len(args.models), "model"))
    else:
        print(render_text(diags, len(args.models), "model",
                          quiet=args.quiet))
    return 1 if has_errors(diags) else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis.audit import audit_prediction_query

    model = load_model(args.model)
    pipeline = None
    if args.fuse:
        from repro.graph.passes import default_inference_pipeline

        pipeline = default_inference_pipeline()
    profile = zoo_profile(args.network, args.image, pipeline)
    features = ConvNetFeatures.from_profile(profile)
    if args.backend:
        backend = get_backend(args.backend)
        training = isinstance(model, TrainingStepModel)
        if not backend.fits(profile, args.batch, training=training):
            print(
                f"warning: configuration exceeds {args.backend} backend "
                f"memory on {backend.device.name} at batch {args.batch}; "
                "the prediction extrapolates past what the device could "
                "measure"
            )
    for diag in audit_prediction_query(
        model, features, args.batch, args.devices, args.nodes,
        factor=args.domain_factor,
    ):
        print(f"warning: {diag.render()}")
    if isinstance(model, TrainingStepModel):
        pred = model.predict_one(
            features, args.batch, devices=args.devices, nodes=args.nodes
        )
        step = pred.total
        print(f"predicted training step: {step * 1e3:.2f} ms "
              f"(fwd {pred.forward * 1e3:.2f} ms, "
              f"bwd+update {pred.backward_plus_update * 1e3:.2f} ms)")
        if args.dataset_size:
            t_epoch = epoch_time(
                step, args.dataset_size, args.batch, args.devices
            )
            print(f"predicted epoch: {t_epoch / 60:.1f} min")
            if args.epochs:
                total = total_training_time(
                    step, args.dataset_size, args.batch, args.epochs,
                    args.devices,
                )
                print(f"predicted full run ({args.epochs} epochs): "
                      f"{total / 3600:.2f} h")
    elif isinstance(model, ForwardModel):
        t = model.predict_one(features, args.batch)
        print(f"predicted inference: {t * 1e3:.3f} ms "
              f"({args.batch / t:.0f} images/s)")
    else:  # pragma: no cover - persistence restricts kinds
        raise SystemExit(f"cannot predict with {type(model).__name__}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        BenchConfig,
        ModelRegistry,
        RegistryError,
        UnknownArtifactError,
        bench_registry,
        make_server,
        write_bench,
    )

    try:
        registry = ModelRegistry(args.registry)
    except RegistryError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    domain_factor = args.domain_factor if args.domain_factor > 0 else None
    if args.bench:
        try:
            artifact = args.artifact or registry.default_name()
            registry.get(artifact)
        except (UnknownArtifactError, RegistryError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
        config = BenchConfig(
            artifact=artifact,
            queries=args.queries,
            threads=args.threads,
            seed=args.seed,
        )
        payload = bench_registry(
            registry, config, fuse=args.fuse, domain_factor=domain_factor
        )
        write_bench(payload, args.out)
        lat = payload["latency_ms"]
        print(
            f"benched {artifact!r}: {payload['totals']['queries']} queries "
            f"in {payload['wall_seconds']:.2f} s "
            f"({payload['qps']:.0f} q/s, {payload['totals']['errors']} "
            "errors)"
        )
        print(
            f"latency p50 {lat['p50']:.2f} ms, p90 {lat['p90']:.2f} ms, "
            f"p99 {lat['p99']:.2f} ms; feature-cache hit rate "
            f"{payload['feature_cache']['hit_rate']:.0%}"
        )
        print(f"wrote {args.out}")
        return 0
    server = make_server(
        registry,
        host=args.host,
        port=args.port,
        fuse=args.fuse,
        domain_factor=domain_factor,
        feature_cache_size=args.feature_cache,
    )
    names = ", ".join(registry.names())
    print(f"serving {names} from {args.registry} on {server.url}")
    print("endpoints: POST /predict, GET /healthz, GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.verify import verify_model
    from repro.diagnostics import has_errors, render_json, render_text

    if args.all_zoo:
        names = available_models()
    elif args.models:
        names = list(args.models)
    else:
        raise SystemExit("verify: name at least one model or pass --all-zoo")
    diags = []
    for name in names:
        diags.extend(
            verify_model(name, args.image, ignore=args.ignore,
                         fuse=args.fuse)
        )
    if args.format == "json":
        print(render_json(diags, len(names), "model"))
    else:
        print(render_text(diags, len(names), "model", quiet=args.quiet))
    return 1 if has_errors(diags) else 0


#: Lint rule families, in report order: (domain label, rule-id prefix).
_LINT_DOMAINS = (
    ("determinism", "DET"),
    ("concurrency", "CON"),
    ("performance", "PERF"),
    ("suppressions", "SUP"),
)


def _render_lint_statistics(diags) -> str:
    """Per-domain, per-rule finding counts for ``lint --statistics``."""
    from collections import Counter

    counts = Counter(d.rule for d in diags)
    lines = ["statistics:"]
    for domain, prefix in _LINT_DOMAINS:
        rules = sorted(r for r in counts if r.startswith(prefix))
        total = sum(counts[r] for r in rules)
        lines.append(f"  {domain} ({prefix}): {total}")
        for rule in rules:
            lines.append(f"    {rule}: {counts[rule]}")
    return "\n".join(lines)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.diagnostics import has_errors, render_json, render_text
    from repro.diagnostics import sort_diagnostics
    from repro.lint import lint_paths

    diags = []
    # All domains scan the same path set; keep the largest count so a
    # domain reporting fewer parseable files cannot shrink the summary.
    n_files = 0
    if args.domain in ("determinism", "all"):
        det_diags, n_det = lint_paths(args.paths)
        diags.extend(det_diags)
        n_files = max(n_files, n_det)
    if args.domain in ("concurrency", "all"):
        from repro.analysis.concurrency import analyze_paths

        con_diags, n_con = analyze_paths(args.paths, ignore=args.ignore)
        diags.extend(con_diags)
        n_files = max(n_files, n_con)
    if args.domain in ("performance", "all"):
        from repro.analysis.perf import analyze_paths as analyze_perf

        perf_diags, n_perf = analyze_perf(args.paths, ignore=args.ignore)
        diags.extend(perf_diags)
        n_files = max(n_files, n_perf)
    if args.ignore:
        unwanted = set(args.ignore)
        diags = [d for d in diags if d.rule not in unwanted]
    if args.select:
        wanted = set(args.select)
        diags = [d for d in diags if d.rule in wanted]
    diags = sort_diagnostics(diags)
    if args.format == "json":
        print(render_json(diags, n_files, "file"))
    else:
        print(render_text(diags, n_files, "file", quiet=args.quiet))
    if args.statistics:
        print(_render_lint_statistics(diags))
    return 1 if has_errors(diags) else 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.baselines.eval import (
        DEFAULT_LEADERBOARD_MODELS,
        render_leaderboard,
        run_leaderboard,
        write_leaderboard,
    )

    models = tuple(args.models) if args.models else DEFAULT_LEADERBOARD_MODELS
    try:
        payload = run_leaderboard(
            models=models,
            scenarios=tuple(args.scenario),
            seed=args.seed,
            fast=args.fast,
            predictors=tuple(args.predictors),
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"leaderboard: {message}", file=sys.stderr)
        return 2
    print(render_leaderboard(payload))
    if args.out:
        write_leaderboard(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.model_report import block_report
    from repro.zoo import build_model

    model = load_model(args.model)
    if not isinstance(model, ForwardModel):
        raise SystemExit("report requires a forward model (fit --kind forward)")
    graph = build_model(args.network, args.image)
    report = block_report(graph, model, batch=args.batch)
    print(report.render())
    bottleneck = report.bottleneck()
    print(
        f"\nbottleneck: {bottleneck.block} "
        f"({bottleneck.share:.0%} of predicted block time)"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    spec = _EXPERIMENTS[args.id]
    module_name, func_name = spec.split(":")
    runner = getattr(importlib.import_module(module_name), func_name)
    result = runner()
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ConvMeter: ConvNet runtime and scalability prediction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list zoo architectures").set_defaults(
        func=_cmd_models
    )
    sub.add_parser("blocks", help="list the Table 2 block catalogue"
                   ).set_defaults(func=_cmd_blocks)
    devices = sub.add_parser(
        "devices",
        help="list device presets and registered execution backends",
    )
    devices.add_argument("--format", choices=("text", "json"),
                         default="text")
    devices.set_defaults(func=_cmd_devices)

    _EXIT_CODES = (
        "exit codes: 0 = clean (warnings allowed), "
        "1 = ERROR diagnostics found, 2 = usage error"
    )
    verify = sub.add_parser(
        "verify",
        help="statically verify graph IRs (shapes, topology, metric "
             "accounting)",
        epilog=_EXIT_CODES,
    )
    verify.add_argument("models", nargs="*",
                        help="zoo model names to verify")
    verify.add_argument("--all-zoo", action="store_true",
                        help="verify every registered zoo architecture")
    verify.add_argument("--image", type=int, default=224,
                        help="square image size (clamped up to each "
                             "model's minimum)")
    verify.add_argument("--ignore", nargs="*", default=(), metavar="RULE",
                        help="rule ids to suppress (e.g. IR005)")
    verify.add_argument("--format", choices=("text", "json"),
                        default="text")
    verify.add_argument("--quiet", action="store_true",
                        help="print only the one-line summary")
    verify.add_argument("--fuse", action="store_true",
                        help="additionally verify the fused inference "
                             "graph and its semantic preservation (IR008)")
    verify.set_defaults(func=_cmd_verify)

    transform = sub.add_parser(
        "transform",
        help="apply graph transformation passes and report the effect",
        epilog="exit codes: 0 = transformed, 2 = unknown model or pass",
    )
    transform.add_argument("model",
                           help="zoo model name (see `repro models`)")
    transform.add_argument("--image", type=int, default=224,
                           help="square image size (clamped up to the "
                                "model's minimum)")
    transform.add_argument("--passes", nargs="*", default=(),
                           metavar="PASS",
                           help="pass names to run in order (default: the "
                                "inference pipeline; see docs/"
                                "transforms.md)")
    transform.add_argument("--diff", action="store_true",
                           help="also print the fused-layer mapping and "
                                "removed dead layers")
    transform.set_defaults(func=_cmd_transform)

    lint = sub.add_parser(
        "lint",
        help="lint code for determinism hazards (unseeded RNGs, "
             "unbounded caches, wall-clock reads), concurrency "
             "hazards (lock discipline, thread-hostile APIs), or "
             "hot-path performance hazards (per-element loops over "
             "vectorizable work)",
        epilog=_EXIT_CODES,
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--domain",
                      choices=("determinism", "concurrency",
                               "performance", "all"),
                      default="determinism",
                      help="which rule family to run: determinism "
                           "(DET0xx, per-file), concurrency (CON0xx, "
                           "whole-program lock/race analysis), "
                           "performance (PERF0xx, hot-path "
                           "vectorization/allocation analysis), or all")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--quiet", action="store_true",
                      help="print only the one-line summary")
    lint.add_argument("--select", nargs="*", default=(), metavar="RULE",
                      help="report only these rule ids (e.g. DET006)")
    lint.add_argument("--ignore", nargs="*", default=(), metavar="RULE",
                      help="rule ids to suppress (e.g. CON008)")
    lint.add_argument("--statistics", action="store_true",
                      help="append per-domain, per-rule finding counts "
                           "after the report")
    lint.set_defaults(func=_cmd_lint)

    audit = sub.add_parser(
        "audit",
        help="statistically audit fitted model artifacts (coefficient "
             "signs, collinearity, leverage, extrapolation domain)",
        epilog=_EXIT_CODES,
    )
    audit.add_argument("models", nargs="+", metavar="MODEL_JSON",
                       help="saved model JSON files to audit")
    audit.add_argument("--data", default=None,
                       help="campaign JSON the model was fitted on; "
                            "re-derives design matrices and enables the "
                            "data-dependent rules (FIT002/3/5/6)")
    audit.add_argument("--ignore", nargs="*", default=(), metavar="RULE",
                       help="rule ids to suppress (e.g. FIT007)")
    audit.add_argument("--format", choices=("text", "json"),
                       default="text")
    audit.add_argument("--quiet", action="store_true",
                       help="print only the one-line summary")
    audit.set_defaults(func=_cmd_audit)

    campaign = sub.add_parser("campaign", help="run a benchmark campaign")
    campaign.add_argument(
        "--scenario",
        choices=("inference", "training", "distributed", "blocks"),
        default="inference",
    )
    campaign.add_argument("--device", default=None,
                          choices=sorted(DEVICE_PRESETS),
                          help="hardware preset (default: the backend's "
                               "default device; a100-80gb for roofline)")
    campaign.add_argument("--backend", default="",
                          choices=sorted(BACKEND_REGISTRY),
                          help="execution backend (see `repro devices`; "
                               "default: roofline)")
    campaign.add_argument("--models", nargs="*", default=None)
    campaign.add_argument("--nodes", nargs="*", type=int,
                          default=(1, 2, 4, 8),
                          help="node counts (distributed scenario)")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--max-seconds", type=float, default=None,
                          help="skip configs slower than this estimate")
    campaign.add_argument("--workers", type=int, default=1,
                          help="process-pool size; 1 runs in-process "
                               "(records are identical either way)")
    campaign.add_argument("--store", default=None,
                          help="directory for the resumable record store "
                               "(JSONL + manifest)")
    campaign.add_argument("--resume", action="store_true",
                          help="continue an interrupted campaign from "
                               "--store, skipping recorded points")
    campaign.add_argument("--strict", action="store_true",
                          help="refuse to measure any graph with ERROR "
                               "verification diagnostics (default: warn "
                               "and measure anyway)")
    campaign.add_argument("--no-verify", action="store_true",
                          help="skip pre-measurement graph verification")
    campaign.add_argument("--fuse", action="store_true",
                          help="measure inference-fused graphs (BatchNorm "
                               "folding + activation fusion; see "
                               "`repro transform`)")
    campaign.add_argument("--trace", default=None, metavar="PATH",
                          help="also write a Chrome-format trace of the "
                               "full sweep (serial post-pass; records and "
                               "stats are unchanged)")
    campaign.add_argument("-o", "--out", required=True)
    campaign.set_defaults(func=_cmd_campaign)

    trace = sub.add_parser(
        "trace",
        help="trace one simulated measurement (spans + work counters)",
        epilog="exit codes: 0 = trace written, 1 = configuration does not "
               "fit device memory, 2 = unknown model",
    )
    trace.add_argument("model", help="zoo model name (see `repro models`)")
    trace.add_argument("--device", default=None,
                       choices=sorted(DEVICE_PRESETS),
                       help="hardware preset (default: the backend's "
                            "default device; a100-80gb for roofline)")
    trace.add_argument("--backend", default="",
                       choices=sorted(BACKEND_REGISTRY),
                       help="execution backend (see `repro devices`)")
    trace.add_argument("--image", type=int, default=224,
                       help="square image size (clamped up to the model's "
                            "minimum)")
    trace.add_argument("--batch", type=int, default=1)
    trace.add_argument("--phase",
                       choices=("inference", "step", "distributed"),
                       default="inference",
                       help="what to measure: forward pass, single-device "
                            "training step, or data-parallel step")
    trace.add_argument("--nodes", type=int, default=2,
                       help="cluster nodes (--phase distributed)")
    trace.add_argument("--gpus-per-node", type=int, default=4)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--fuse", action="store_true",
                       help="trace the fused inference graph (spans carry "
                            "fused names like conv+bn+relu)")
    trace.add_argument("--format", choices=("tree", "json", "chrome"),
                       default="tree",
                       help="text tree, full span JSON, or a "
                            "chrome://tracing / Perfetto-loadable file")
    trace.add_argument("-o", "--out", default=None,
                       help="write to a file instead of stdout")
    trace.set_defaults(func=_cmd_trace)

    fit = sub.add_parser("fit", help="fit a performance model")
    fit.add_argument("--data", required=True, help="campaign JSON file")
    fit.add_argument("--kind", choices=("forward", "step"),
                     default="forward")
    fit.add_argument("--method", choices=("ols", "nnls"), default="ols",
                     help="regression solver; nnls constrains "
                          "coefficients to be non-negative (the FIT001 "
                          "fix)")
    fit.add_argument("--exclude", default=None,
                     help="hold out one model (leave-one-out)")
    fit.add_argument("--backend", default=None,
                     choices=sorted(BACKEND_REGISTRY),
                     help="fit only records measured under this backend "
                          "(default: use every record)")
    fit.add_argument("--audit", choices=("warn", "strict", "off"),
                     default="warn",
                     help="fitted-model audit gate: warn embeds the audit "
                          "block and warns on ERRORs, strict refuses to "
                          "save on ERRORs, off skips auditing")
    fit.add_argument("-o", "--out", required=True)
    fit.set_defaults(func=_cmd_fit)

    predict = sub.add_parser("predict", help="predict with a saved model")
    predict.add_argument("--model", required=True, help="model JSON file")
    predict.add_argument("--network", required=True)
    predict.add_argument("--image", type=int, default=224)
    predict.add_argument("--batch", type=int, default=1)
    predict.add_argument("--devices", type=int, default=1)
    predict.add_argument("--nodes", type=int, default=1)
    predict.add_argument("--dataset-size", type=int, default=None)
    predict.add_argument("--epochs", type=int, default=None)
    predict.add_argument("--domain-factor", type=float, default=10.0,
                         help="flag queries beyond this multiple of the "
                              "fitted feature range (FIT004)")
    predict.add_argument("--fuse", action="store_true",
                         help="predict from the fused inference graph's "
                              "metric vector")
    predict.add_argument("--backend", default="",
                         choices=sorted(BACKEND_REGISTRY),
                         help="warn when the configuration would not fit "
                              "this backend's memory accounting")
    predict.set_defaults(func=_cmd_predict)

    serve = sub.add_parser(
        "serve",
        help="serve predictions over HTTP from a registry of fitted "
             "models (see docs/serving.md)",
        epilog="exit codes: 0 = clean shutdown / bench written, "
               "2 = unusable registry or artifact",
    )
    serve.add_argument("--registry", required=True,
                       help="directory of v2 model artifacts (+ optional "
                            "registry.json manifest)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151,
                       help="listen port (0 picks an ephemeral one)")
    serve.add_argument("--fuse", action="store_true",
                       help="default queries to the fused inference "
                            "graph's metric vector (per-query 'fuse' "
                            "overrides)")
    serve.add_argument("--domain-factor", type=float, default=10.0,
                       help="flag query features beyond this multiple of "
                            "the fitted range per response (FIT004); "
                            "<= 0 disables")
    serve.add_argument("--feature-cache", type=int, default=512,
                       help="max entries of the (network, image, "
                            "transform) feature-vector LRU cache")
    serve.add_argument("--bench", action="store_true",
                       help="boot an ephemeral server, drive it with a "
                            "seeded load, write the benchmark JSON, exit")
    serve.add_argument("--artifact", default=None,
                       help="registry artifact to bench (default: the "
                            "registry's default model)")
    serve.add_argument("--queries", type=int, default=256,
                       help="total queries the bench issues")
    serve.add_argument("--threads", type=int, default=4,
                       help="concurrent bench client threads")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed of the deterministic bench query mix")
    serve.add_argument("-o", "--out", default="BENCH_serve.json",
                       help="bench payload path (--bench)")
    serve.set_defaults(func=_cmd_serve)

    leaderboard = sub.add_parser(
        "leaderboard",
        help="leave-one-out leaderboard racing every baseline predictor "
             "(ConvMeter, PALEO, NeuralPower, DIPPM, ResPerfNet, "
             "PerfSeer, PreNeT) on seeded campaigns",
        epilog="exit codes: 0 = leaderboard rendered/written, "
               "2 = unknown scenario/predictor or bad model set",
    )
    leaderboard.add_argument("--models", nargs="*", default=None,
                             help="networks to race over (>= 2; default: "
                                  "the common-ground zoo subset)")
    leaderboard.add_argument("--scenario", nargs="*", metavar="NAME",
                             default=list(_LEADERBOARD_SCENARIOS),
                             help="scenarios to run "
                                  f"(default: {' '.join(_LEADERBOARD_SCENARIOS)})")
    leaderboard.add_argument("--predictors", nargs="*", metavar="NAME",
                             default=list(_LEADERBOARD_PREDICTORS),
                             help="suite members to race "
                                  f"(default: {' '.join(_LEADERBOARD_PREDICTORS)})")
    leaderboard.add_argument("--seed", type=int, default=0)
    leaderboard.add_argument("--fast", action="store_true",
                             help="reduced sweep grid + small learned "
                                  "models (CI-sized; still deterministic)")
    leaderboard.add_argument("-o", "--out", default=None,
                             help="also write the schema-validated "
                                  "BENCH_leaderboard.json payload here")
    leaderboard.set_defaults(func=_cmd_leaderboard)

    report = sub.add_parser(
        "report", help="block-level latency report for one network"
    )
    report.add_argument("--model", required=True,
                        help="saved forward model JSON")
    report.add_argument("--network", required=True)
    report.add_argument("--image", type=int, default=224)
    report.add_argument("--batch", type=int, default=1)
    report.set_defaults(func=_cmd_report)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(_EXPERIMENTS))
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. `repro trace ... | head`); exit
        # quietly on a detached stream rather than dumping a traceback.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
