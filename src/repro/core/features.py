"""Design-matrix construction from timing records.

Encodes the paper's performance-model structure:

* forward / inference (Eq. 3)::

      T_fwd = b·(c1·F + c2·I + c3·O) + c4          b = B/N (mini-batch)

* gradient update (Eq. 4)::

      T_grad = c1·L                    N = 1
      T_grad = c1·L + c2·W + c3·N      N > 1

* combined backward + gradient update (Section 3.3): the seven-coefficient
  union of both designs, fitted against the summed backward and update
  measurements because the two phases overlap in Horovod.

F, I, O are batch-size-one metrics; the batch enters as an explicit factor,
so a single fit covers every batch size — including ones that exceed device
memory, which is what powers the Figure 9 extrapolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.benchdata.records import ConvNetFeatures, TimingRecord

#: The metric combination the paper settles on for the forward pass.
FORWARD_FEATURES: tuple[str, ...] = ("flops", "inputs", "outputs")

#: Column labels of the combined backward+update design.
COMBINED_FEATURES: tuple[str, ...] = (
    "b*flops", "b*inputs", "b*outputs", "layers", "weights", "devices",
    "intercept",
)


def _metric(features: ConvNetFeatures, name: str) -> float:
    try:
        return float(getattr(features, name))
    except AttributeError:
        raise KeyError(
            f"unknown ConvNet metric {name!r}; have flops, inputs, outputs, "
            "weights, layers"
        ) from None


def forward_row(
    features: ConvNetFeatures,
    batch: int,
    metric_names: Sequence[str] = FORWARD_FEATURES,
) -> np.ndarray:
    """One design row [b·m1, …, b·mk, 1] for the forward model."""
    values = [batch * _metric(features, m) for m in metric_names]
    return np.array(values + [1.0])


def forward_design(
    records: Sequence[TimingRecord],
    metric_names: Sequence[str] = FORWARD_FEATURES,
) -> np.ndarray:
    """Design matrix of Eq. 3 (rows = records)."""
    X = np.empty((len(records), len(metric_names) + 1))
    for i, r in enumerate(records):
        X[i] = forward_row(r.features, r.batch, metric_names)
    return X


def grad_update_row(
    features: ConvNetFeatures, devices: int, multi_node: bool
) -> np.ndarray:
    """One design row of Eq. 4."""
    if multi_node:
        return np.array(
            [float(features.layers), float(features.weights), float(devices),
             1.0]
        )
    return np.array([float(features.layers), 1.0])


def grad_update_design(
    records: Sequence[TimingRecord], multi_node: bool
) -> np.ndarray:
    """Design matrix of Eq. 4 for a homogeneous (single or multi) dataset."""
    X = np.empty((len(records), 4 if multi_node else 2))
    for i, r in enumerate(records):
        X[i] = grad_update_row(r.features, r.devices, multi_node)
    return X


def combined_bwd_grad_row(
    features: ConvNetFeatures, batch: int, devices: int
) -> np.ndarray:
    """One seven-coefficient row for the overlapped backward+update model."""
    return np.array(
        [
            batch * features.flops,
            batch * features.inputs,
            batch * features.outputs,
            float(features.layers),
            float(features.weights),
            float(devices),
            1.0,
        ]
    )


def combined_bwd_grad_design(
    records: Sequence[TimingRecord],
) -> np.ndarray:
    """Design matrix of the combined backward+gradient-update model."""
    return np.array(
        [
            combined_bwd_grad_row(r.features, r.batch, r.devices)
            for r in records
        ]
    )


def target(records: Sequence[TimingRecord], which: str) -> np.ndarray:
    """Measurement vector for a phase: fwd | bwd | grad | bwd+grad | total."""
    extractors = {
        "fwd": lambda r: r.t_fwd,
        "bwd": lambda r: r.t_bwd,
        "grad": lambda r: r.t_grad,
        "bwd+grad": lambda r: r.t_bwd + r.t_grad,
        "total": lambda r: r.t_total,
    }
    try:
        extract = extractors[which]
    except KeyError:
        raise KeyError(
            f"unknown target {which!r}; options: {', '.join(extractors)}"
        ) from None
    return np.array([extract(r) for r in records], dtype=np.float64)
