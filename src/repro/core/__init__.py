"""ConvMeter: the paper's performance model.

Linear-regression runtime prediction for ConvNets from inherent network
metrics (FLOPs, Inputs, Outputs, Weights, Layers):

* :class:`ForwardModel` — inference / forward-pass time (Eq. 2/3),
* :class:`BackwardModel` — backward-pass time,
* :class:`GradientUpdateModel` — gradient update (Eq. 4, single / multi node),
* :class:`CombinedBwdGradModel` — overlapped backward+update, 7 coefficients,
* :class:`TrainingStepModel` — full training step (Eq. 1) and epoch time,
* leave-one-out evaluation (:mod:`repro.core.loo`) and scalability analysis
  (:mod:`repro.core.scalability`).
"""

from repro.core.metrics import EvalMetrics, evaluate_predictions
from repro.core.regression import LinearModel
from repro.core.features import (
    FORWARD_FEATURES,
    combined_bwd_grad_design,
    forward_design,
    grad_update_design,
)
from repro.core.forward import ForwardModel
from repro.core.training import (
    BackwardModel,
    CombinedBwdGradModel,
    GradientUpdateModel,
    StepPrediction,
    TrainingStepModel,
)
from repro.core.epoch import (
    accumulated_step_time,
    epoch_time,
    throughput,
    total_training_time,
)
from repro.core.loo import (
    LeaveOneOutResult,
    leave_one_out,
    shared_fit_evaluation,
)
from repro.core.scalability import (
    ScalingPoint,
    batch_scaling_curve,
    efficiency,
    node_scaling_curve,
    strong_scaling_curve,
    turning_point,
)
from repro.core.blockwise import blockwise_evaluation
from repro.core.persistence import load_model, save_model
from repro.core.refinement import compare_refinement, model_specific_fit
from repro.core.confidence import (
    bootstrap_coefficients,
    bootstrap_prediction,
)

__all__ = [
    "EvalMetrics",
    "evaluate_predictions",
    "LinearModel",
    "FORWARD_FEATURES",
    "forward_design",
    "grad_update_design",
    "combined_bwd_grad_design",
    "ForwardModel",
    "BackwardModel",
    "GradientUpdateModel",
    "CombinedBwdGradModel",
    "TrainingStepModel",
    "StepPrediction",
    "epoch_time",
    "total_training_time",
    "throughput",
    "accumulated_step_time",
    "LeaveOneOutResult",
    "leave_one_out",
    "shared_fit_evaluation",
    "ScalingPoint",
    "node_scaling_curve",
    "strong_scaling_curve",
    "batch_scaling_curve",
    "efficiency",
    "turning_point",
    "blockwise_evaluation",
    "save_model",
    "load_model",
    "model_specific_fit",
    "compare_refinement",
    "bootstrap_coefficients",
    "bootstrap_prediction",
]
