"""Evaluation metrics (Section 4, "Metrics").

The paper reports R², RMSE, range-normalised RMSE (NRMSE), and MAPE for
every experiment; this module computes all four plus the record count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EvalMetrics:
    """The paper's four accuracy metrics for one set of predictions."""

    r2: float
    rmse: float
    nrmse: float
    mape: float
    n: int

    def __str__(self) -> str:
        return (
            f"R²={self.r2:.3f} RMSE={self.rmse:.4g}s "
            f"NRMSE={self.nrmse:.2f} MAPE={self.mape:.2f} (n={self.n})"
        )


def r_squared(measured: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination."""
    ss_res = float(np.sum((measured - predicted) ** 2))
    ss_tot = float(np.sum((measured - measured.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rmse(measured: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error (absolute, same unit as the measurements)."""
    return float(np.sqrt(np.mean((measured - predicted) ** 2)))


def nrmse(measured: np.ndarray, predicted: np.ndarray) -> float:
    """RMSE normalised by the range of the measured values (the paper's
    'relative RMSE normalized by the range of the data points')."""
    span = float(measured.max() - measured.min())
    if span == 0.0:
        return 0.0
    return rmse(measured, predicted) / span


def mape(measured: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error, as a fraction (0.25 = 25%)."""
    if np.any(measured == 0):
        raise ValueError("MAPE undefined for zero measurements")
    return float(np.mean(np.abs((predicted - measured) / measured)))


def evaluate_predictions(
    measured: np.ndarray, predicted: np.ndarray
) -> EvalMetrics:
    """All four paper metrics for one prediction set."""
    measured = np.asarray(measured, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if measured.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {measured.shape} vs {predicted.shape}"
        )
    if measured.size == 0:
        raise ValueError("cannot evaluate empty prediction set")
    return EvalMetrics(
        r2=r_squared(measured, predicted),
        rmse=rmse(measured, predicted),
        nrmse=nrmse(measured, predicted),
        mape=mape(measured, predicted),
        n=int(measured.size),
    )
