"""Block-wise inference prediction (Section 4.1.2).

Blocks are extracted as standalone subgraphs, so the forward model applies
unchanged.  Following Section 4.1 ("all runtime predictions for a given
device use the same coefficients"), the default protocol fits one set of
coefficients on the whole block corpus and reports per-block accuracy; a
leave-one-block-out variant is available for stricter generalisation
studies.
"""

from __future__ import annotations

from repro.benchdata.records import Dataset
from repro.core.forward import ForwardModel
from repro.core.loo import (
    LeaveOneOutResult,
    leave_one_out,
    shared_fit_evaluation,
)


def blockwise_evaluation(
    block_data: Dataset, method: str = "ols", protocol: str = "shared"
) -> LeaveOneOutResult:
    """Per-block accuracy of the forward model on block measurements.

    ``protocol`` is ``"shared"`` (one fit over all blocks, the paper's
    Section 4.1 convention) or ``"loo"`` (each block held out of its own
    fit).
    """
    factory = lambda: ForwardModel(method=method)  # noqa: E731
    measured = lambda r: r.t_fwd  # noqa: E731
    if protocol == "shared":
        return shared_fit_evaluation(block_data, factory, measured)
    if protocol == "loo":
        return leave_one_out(block_data, factory, measured)
    raise ValueError(f"unknown protocol {protocol!r}")
