"""Training-phase performance models (Sections 3.2–3.4).

* :class:`BackwardModel` — same structure as the forward model, fitted on
  backward-pass measurements (Section 3.2).
* :class:`GradientUpdateModel` — Eq. 4: ``c1·L`` on a single device,
  ``c1·L + c2·W + c3·N`` across nodes (Section 3.3).
* :class:`CombinedBwdGradModel` — because the gradient update overlaps the
  backward pass under Horovod's tensor fusion, the paper fits both phases
  jointly with seven coefficients against the summed measurement.
* :class:`TrainingStepModel` — Eq. 1: ``T_iter = T_fwd + T_bwd + T_grad``,
  realised as forward + combined(backward, update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.core.features import (
    combined_bwd_grad_design,
    combined_bwd_grad_row,
    grad_update_design,
    grad_update_row,
    target,
)
from repro.core.forward import ForwardModel
from repro.core.metrics import EvalMetrics, evaluate_predictions
from repro.core.regression import LinearModel


class BackwardModel(ForwardModel):
    """Backward-pass model: forward structure, backward measurements."""

    def __init__(self, method: str = "ols") -> None:
        super().__init__(method=method, phase="bwd")


class GradientUpdateModel:
    """Gradient-update model, Eq. 4.

    ``multi_node=False`` fits ``c1·L + c2`` (the intercept absorbs the fixed
    optimizer-launch cost); ``multi_node=True`` fits
    ``c1·L + c2·W + c3·N + c4``.
    """

    def __init__(self, multi_node: bool, method: str = "ols") -> None:
        self.multi_node = multi_node
        names = (
            ("layers", "weights", "devices", "intercept")
            if multi_node
            else ("layers", "intercept")
        )
        self.model = LinearModel(method=method, feature_names=names)

    def fit(self, data: Dataset | Sequence[TimingRecord]) -> "GradientUpdateModel":
        records = list(data)
        if not records:
            raise ValueError("cannot fit on an empty dataset")
        X = grad_update_design(records, self.multi_node)
        y = target(records, "grad")
        self.model.fit(X, y)
        return self

    def predict_one(self, features: ConvNetFeatures, devices: int = 1) -> float:
        row = grad_update_row(features, devices, self.multi_node)
        return float(self.model.predict(row)[0])

    def predict(self, data: Dataset | Sequence[TimingRecord]) -> np.ndarray:
        records = list(data)
        return self.model.predict(
            grad_update_design(records, self.multi_node)
        )

    def evaluate(self, data: Dataset | Sequence[TimingRecord]) -> EvalMetrics:
        records = list(data)
        return evaluate_predictions(
            target(records, "grad"), self.predict(records)
        )

    def coefficients(self) -> dict[str, float]:
        return self.model.coefficients()


class CombinedBwdGradModel:
    """Joint backward + gradient-update model (seven coefficients).

    Mirrors the piecewise structure of Eq. 4: gradient synchronisation over
    the intra-node fabric (single node) and over the inter-node network are
    different physical regimes, so separate coefficient sets are fitted for
    single-node and multi-node records.  The multi-node branch carries the
    weights and device-count terms (inter-node communication scales with
    the model size); the single-node branch does not need them beyond the
    per-layer update cost.
    """

    SINGLE_FEATURES = (
        "b*flops", "b*inputs", "b*outputs", "layers", "intercept",
    )
    MULTI_FEATURES = (
        "b*flops", "b*inputs", "b*outputs", "layers", "weights", "devices",
        "intercept",
    )

    def __init__(self, method: str = "ols") -> None:
        self.method = method
        self.single = LinearModel(
            method=method, feature_names=self.SINGLE_FEATURES
        )
        self.multi = LinearModel(
            method=method, feature_names=self.MULTI_FEATURES
        )

    @staticmethod
    def _single_row(features: ConvNetFeatures, batch: int) -> np.ndarray:
        return np.array(
            [
                batch * features.flops,
                batch * features.inputs,
                batch * features.outputs,
                float(features.layers),
                1.0,
            ]
        )

    def fit(self, data: Dataset | Sequence[TimingRecord]) -> "CombinedBwdGradModel":
        records = list(data)
        if not records:
            raise ValueError("cannot fit on an empty dataset")
        single = [r for r in records if r.nodes == 1]
        multi = [r for r in records if r.nodes > 1]
        if single:
            X = np.array(
                [self._single_row(r.features, r.batch) for r in single]
            )
            self.single.fit(X, target(single, "bwd+grad"))
        if multi:
            self.multi.fit(
                combined_bwd_grad_design(multi), target(multi, "bwd+grad")
            )
        return self

    def predict_one(
        self,
        features: ConvNetFeatures,
        batch: int,
        devices: int = 1,
        nodes: int = 1,
    ) -> float:
        if nodes > 1:
            if not self.multi.is_fitted:
                raise RuntimeError(
                    "no multi-node records were available at fit time"
                )
            row = combined_bwd_grad_row(features, batch, devices)
            return float(self.multi.predict(row)[0])
        if not self.single.is_fitted:
            raise RuntimeError(
                "no single-node records were available at fit time"
            )
        row = self._single_row(features, batch)
        return float(self.single.predict(row)[0])

    def predict_configs(
        self,
        features: ConvNetFeatures,
        configs: Sequence[tuple[int, int, int]],
    ) -> np.ndarray:
        """Batched :meth:`predict_one` over ``(batch, devices, nodes)``
        sweep configurations.

        Partitions the sweep into the single-node and multi-node
        regimes, builds one preallocated design matrix per regime and
        predicts each with a single call; element ``i`` is bit-identical
        to ``predict_one(features, *configs[i])``.
        """
        out = np.empty(len(configs), dtype=np.float64)
        single = [i for i, (_, _, n) in enumerate(configs) if n == 1]
        multi = [i for i, (_, _, n) in enumerate(configs) if n > 1]
        if multi:
            if not self.multi.is_fitted:
                raise RuntimeError(
                    "no multi-node records were available at fit time"
                )
            X = np.empty((len(multi), len(self.MULTI_FEATURES)))
            for j, i in enumerate(multi):
                batch, devices, _ = configs[i]
                X[j] = combined_bwd_grad_row(features, batch, devices)
            out[multi] = self.multi.predict(X)
        if single:
            if not self.single.is_fitted:
                raise RuntimeError(
                    "no single-node records were available at fit time"
                )
            X = np.empty((len(single), len(self.SINGLE_FEATURES)))
            for j, i in enumerate(single):
                X[j] = self._single_row(features, configs[i][0])
            out[single] = self.single.predict(X)
        return out

    def predict(self, data: Dataset | Sequence[TimingRecord]) -> np.ndarray:
        records = list(data)
        return np.array(
            [
                self.predict_one(r.features, r.batch, r.devices, r.nodes)
                for r in records
            ]
        )

    def evaluate(self, data: Dataset | Sequence[TimingRecord]) -> EvalMetrics:
        records = list(data)
        return evaluate_predictions(
            target(records, "bwd+grad"), self.predict(records)
        )

    def coefficients(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        if self.single.is_fitted:
            out["single_node"] = self.single.coefficients()
        if self.multi.is_fitted:
            out["multi_node"] = self.multi.coefficients()
        return out


@dataclass(frozen=True)
class StepPrediction:
    """Predicted phase breakdown of one training step."""

    forward: float
    backward_plus_update: float

    @property
    def total(self) -> float:
        return self.forward + self.backward_plus_update


class TrainingStepModel:
    """Full training-step model: Eq. 1 as forward + combined(bwd, update)."""

    def __init__(self, method: str = "ols") -> None:
        self.forward = ForwardModel(method=method, phase="fwd")
        self.bwd_grad = CombinedBwdGradModel(method=method)

    def fit(self, data: Dataset | Sequence[TimingRecord]) -> "TrainingStepModel":
        records = list(data)
        self.forward.fit(records)
        self.bwd_grad.fit(records)
        return self

    def predict_one(
        self,
        features: ConvNetFeatures,
        batch: int,
        devices: int = 1,
        nodes: int = 1,
    ) -> StepPrediction:
        return StepPrediction(
            forward=self.forward.predict_one(features, batch),
            backward_plus_update=self.bwd_grad.predict_one(
                features, batch, devices, nodes
            ),
        )

    def predict_configs(
        self,
        features: ConvNetFeatures,
        configs: Sequence[tuple[int, int, int]],
    ) -> np.ndarray:
        """Batched step-time totals over ``(batch, devices, nodes)``
        configurations; element ``i`` is bit-identical to
        ``predict_one(features, *configs[i]).total`` (elementwise float64
        addition of the same two doubles)."""
        fwd = self.forward.predict_configs(
            features, [batch for batch, _, _ in configs]
        )
        return fwd + self.bwd_grad.predict_configs(features, configs)

    def predict(self, data: Dataset | Sequence[TimingRecord]) -> np.ndarray:
        records = list(data)
        return self.forward.predict(records) + self.bwd_grad.predict(records)

    def evaluate(self, data: Dataset | Sequence[TimingRecord]) -> EvalMetrics:
        records = list(data)
        return evaluate_predictions(
            target(records, "total"), self.predict(records)
        )

    def evaluate_phase(
        self, data: Dataset | Sequence[TimingRecord], phase: str
    ) -> EvalMetrics:
        """Per-phase accuracy: ``fwd`` or ``bwd+grad``."""
        records = list(data)
        if phase == "fwd":
            return self.forward.evaluate(records)
        if phase == "bwd+grad":
            return self.bwd_grad.evaluate(records)
        raise KeyError(f"unknown phase {phase!r}")
