"""Epoch- and full-training-time arithmetic (Section 2).

``T_epoch = D / (B·N) · T_iter`` where D is the dataset size, B the
per-device batch size, N the number of devices, and ``T_iter`` the predicted
training-step time.  The learning rate deliberately does not appear — it is
applied every iteration regardless of value and does not change the epoch
time (Section 4.3).
"""

from __future__ import annotations

import math


def steps_per_epoch(dataset_size: int, batch: int, devices: int = 1) -> int:
    """Number of training steps per epoch, ``ceil(D / (B·N))``."""
    if dataset_size < 1 or batch < 1 or devices < 1:
        raise ValueError("dataset size, batch, and devices must be positive")
    return math.ceil(dataset_size / (batch * devices))


def epoch_time(
    iter_time: float, dataset_size: int, batch: int, devices: int = 1
) -> float:
    """Wall time of one epoch given a predicted step time."""
    if iter_time < 0:
        raise ValueError("iteration time must be non-negative")
    return steps_per_epoch(dataset_size, batch, devices) * iter_time


def total_training_time(
    iter_time: float, dataset_size: int, batch: int, epochs: int,
    devices: int = 1,
) -> float:
    """Wall time of a full training run."""
    if epochs < 1:
        raise ValueError("epochs must be positive")
    return epochs * epoch_time(iter_time, dataset_size, batch, devices)


def throughput(iter_time: float, batch: int, devices: int = 1) -> float:
    """Images per second of one training step (the Figure 8/9 y-axis)."""
    if iter_time <= 0:
        raise ValueError("iteration time must be positive")
    return batch * devices / iter_time


def accumulated_step_time(
    micro_step_time: float,
    grad_update_time: float,
    accumulation_steps: int,
) -> float:
    """Effective step time under gradient accumulation (Section 3's
    "effects of optimizations such as gradient accumulation").

    ``micro_step_time`` is the forward+backward time of one micro-batch;
    the optimizer/synchronisation step runs once per ``accumulation_steps``
    micro-batches, emulating a batch ``accumulation_steps ×`` larger than
    device memory allows.
    """
    if accumulation_steps < 1:
        raise ValueError("accumulation_steps must be >= 1")
    if micro_step_time < 0 or grad_update_time < 0:
        raise ValueError("times must be non-negative")
    return accumulation_steps * micro_step_time + grad_update_time
