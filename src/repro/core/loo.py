"""Leave-one-out evaluation protocol (Section 4, "Benchmarks").

"To obtain the error rates per ConvNet, we develop a performance model for
each ConvNet, excluding its own data from the training set to ensure
unbiased evaluation" — i.e. every per-model row of Tables 1–3 comes from a
model that has never seen that ConvNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.benchdata.records import Dataset, TimingRecord
from repro.core.metrics import EvalMetrics, evaluate_predictions


class _FittablePredictor(Protocol):
    def fit(self, data): ...
    def predict(self, data) -> np.ndarray: ...


@dataclass(frozen=True)
class LeaveOneOutResult:
    """Per-model metrics plus the pooled predictions for scatter plots."""

    per_model: dict[str, EvalMetrics]
    pooled: EvalMetrics
    #: (model, measured, predicted) triples in evaluation order.
    predictions: tuple[tuple[str, float, float], ...]

    def worst_model(self) -> str:
        return max(self.per_model, key=lambda m: self.per_model[m].mape)

    def best_model(self) -> str:
        return min(self.per_model, key=lambda m: self.per_model[m].mape)

    def mean_mape(self) -> float:
        return float(
            np.mean([m.mape for m in self.per_model.values()])
        )


def leave_one_out(
    data: Dataset,
    model_factory: Callable[[], _FittablePredictor],
    measured_of: Callable[[TimingRecord], float],
) -> LeaveOneOutResult:
    """Fit-and-evaluate with each model's records held out in turn.

    ``model_factory`` builds a fresh unfitted predictor;``measured_of``
    extracts the measured target from a record (e.g. ``lambda r: r.t_fwd``).
    """
    names = data.models()
    if len(names) < 2:
        raise ValueError(
            "leave-one-out needs at least two distinct models in the dataset"
        )
    per_model: dict[str, EvalMetrics] = {}
    triples: list[tuple[str, float, float]] = []
    for name in names:
        train = data.excluding_model(name)
        test = data.for_model(name)
        predictor = model_factory()
        predictor.fit(train)
        predicted = np.asarray(predictor.predict(test), dtype=np.float64)
        measured = np.array([measured_of(r) for r in test], dtype=np.float64)
        per_model[name] = evaluate_predictions(measured, predicted)
        triples.extend(
            (name, float(m), float(p)) for m, p in zip(measured, predicted)
        )
    all_measured = np.array([t[1] for t in triples])
    all_predicted = np.array([t[2] for t in triples])
    return LeaveOneOutResult(
        per_model=per_model,
        pooled=evaluate_predictions(all_measured, all_predicted),
        predictions=tuple(triples),
    )


def shared_fit_evaluation(
    data: Dataset,
    model_factory: Callable[[], _FittablePredictor],
    measured_of: Callable[[TimingRecord], float],
) -> LeaveOneOutResult:
    """Fit once on the whole dataset, report per-model accuracy.

    The protocol of Section 4.1: "All runtime predictions for a given device
    use the same coefficients, as we use the same data points from all
    ConvNets to fit the coefficients."  Same result shape as
    :func:`leave_one_out` so reports can swap protocols.
    """
    predictor = model_factory()
    predictor.fit(data)
    per_model: dict[str, EvalMetrics] = {}
    triples: list[tuple[str, float, float]] = []
    for name in data.models():
        test = data.for_model(name)
        predicted = np.asarray(predictor.predict(test), dtype=np.float64)
        measured = np.array([measured_of(r) for r in test], dtype=np.float64)
        per_model[name] = evaluate_predictions(measured, predicted)
        triples.extend(
            (name, float(m), float(p)) for m, p in zip(measured, predicted)
        )
    all_measured = np.array([t[1] for t in triples])
    all_predicted = np.array([t[2] for t in triples])
    return LeaveOneOutResult(
        per_model=per_model,
        pooled=evaluate_predictions(all_measured, all_predicted),
        predictions=tuple(triples),
    )


def loo_table_rows(
    result: LeaveOneOutResult, display_names: dict[str, str] | None = None
) -> list[dict[str, object]]:
    """Rows shaped like the paper's per-ConvNet tables."""
    rows = []
    for model, metrics in result.per_model.items():
        rows.append(
            {
                "model": (display_names or {}).get(model, model),
                "r2": metrics.r2,
                "rmse": metrics.rmse,
                "nrmse": metrics.nrmse,
                "mape": metrics.mape,
                "n": metrics.n,
            }
        )
    return rows
