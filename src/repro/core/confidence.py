"""Bootstrap confidence intervals for fitted coefficients and predictions.

The paper reports point estimates; an operator deciding on cluster
purchases wants to know how stable those estimates are under resampling of
the benchmark campaign.  Nonparametric bootstrap over records gives
distribution-free intervals without further benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.core.forward import ForwardModel


@dataclass(frozen=True)
class CoefficientInterval:
    """Bootstrap percentile interval for one coefficient."""

    name: str
    point: float
    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class PredictionInterval:
    """Bootstrap interval for one prediction."""

    point: float
    lo: float
    hi: float

    @property
    def relative_width(self) -> float:
        if self.point == 0:
            return float("inf")
        return (self.hi - self.lo) / self.point


def _resample(
    records: list[TimingRecord], rng: np.random.Generator
) -> Dataset:
    idx = rng.integers(0, len(records), len(records))
    return Dataset([records[i] for i in idx])


def bootstrap_coefficients(
    data: Dataset,
    model_factory: Callable[[], ForwardModel] = ForwardModel,
    n_boot: int = 200,
    alpha: float = 0.05,
    seed: int = 0,
) -> list[CoefficientInterval]:
    """Percentile bootstrap intervals for every fitted coefficient."""
    records = list(data)
    if len(records) < 8:
        raise ValueError("bootstrap needs at least 8 records")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    point_model = model_factory()
    point_model.fit(records)
    point = point_model.coefficients()
    names = list(point)

    rng = np.random.default_rng(seed)
    samples = np.empty((n_boot, len(names)))
    for b in range(n_boot):
        model = model_factory()
        model.fit(_resample(records, rng))
        coeffs = model.coefficients()
        samples[b] = [coeffs[n] for n in names]

    lo_q, hi_q = 100 * alpha / 2, 100 * (1 - alpha / 2)
    los = np.percentile(samples, lo_q, axis=0)
    his = np.percentile(samples, hi_q, axis=0)
    return [
        CoefficientInterval(name=n, point=point[n], lo=float(lo),
                            hi=float(hi))
        for n, lo, hi in zip(names, los, his)
    ]


def bootstrap_prediction(
    data: Dataset,
    features: ConvNetFeatures,
    batch: int,
    model_factory: Callable[[], ForwardModel] = ForwardModel,
    n_boot: int = 200,
    alpha: float = 0.05,
    seed: int = 0,
) -> PredictionInterval:
    """Percentile bootstrap interval for one predicted runtime."""
    records = list(data)
    if len(records) < 8:
        raise ValueError("bootstrap needs at least 8 records")
    point_model = model_factory()
    point_model.fit(records)
    point = point_model.predict_one(features, batch)

    rng = np.random.default_rng(seed)
    preds = np.empty(n_boot)
    for b in range(n_boot):
        model = model_factory()
        model.fit(_resample(records, rng))
        preds[b] = model.predict_one(features, batch)
    lo, hi = np.percentile(preds, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return PredictionInterval(point=point, lo=float(lo), hi=float(hi))
