"""Forward-pass / inference performance model (Section 3.1).

``T_fwd = b·(c1·FLOPs + c2·Inputs + c3·Outputs) + c4`` with batch-size-one
metrics and mini-batch ``b = B/N``.  The metric set is configurable so the
Figure 2 ablation (FLOPs-only, Inputs-only, Outputs-only vs the combination)
is a parameter, not a separate code path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.core.features import FORWARD_FEATURES, forward_design, forward_row, target
from repro.core.metrics import EvalMetrics, evaluate_predictions
from repro.core.regression import LinearModel


class ForwardModel:
    """Predicts forward-pass (inference) time from ConvNet metrics."""

    def __init__(
        self,
        metric_names: Sequence[str] = FORWARD_FEATURES,
        method: str = "ols",
        phase: str = "fwd",
    ) -> None:
        self.metric_names = tuple(metric_names)
        self.phase = phase
        self.model = LinearModel(
            method=method,
            feature_names=tuple(f"b*{m}" for m in self.metric_names)
            + ("intercept",),
        )

    def fit(self, data: Dataset | Sequence[TimingRecord]) -> "ForwardModel":
        records = list(data)
        if not records:
            raise ValueError("cannot fit on an empty dataset")
        X = forward_design(records, self.metric_names)
        y = target(records, self.phase)
        self.model.fit(X, y)
        return self

    def predict_one(self, features: ConvNetFeatures, batch: int) -> float:
        """Predicted time for one network at one mini-batch size."""
        return float(self.model.predict(forward_row(features, batch,
                                                    self.metric_names))[0])

    def predict_configs(
        self, features: ConvNetFeatures, batches: Sequence[int]
    ) -> np.ndarray:
        """Batched :meth:`predict_one` over a batch-size sweep.

        One design matrix, one predict call; element ``i`` is
        bit-identical to ``predict_one(features, batches[i])`` because
        :meth:`LinearModel.predict` accumulates columnwise in a
        shape-invariant order.
        """
        X = np.empty((len(batches), len(self.metric_names) + 1))
        for i, batch in enumerate(batches):
            X[i] = forward_row(features, batch, self.metric_names)
        return self.model.predict(X)

    def predict(self, data: Dataset | Sequence[TimingRecord]) -> np.ndarray:
        records = list(data)
        return self.model.predict(forward_design(records, self.metric_names))

    def evaluate(self, data: Dataset | Sequence[TimingRecord]) -> EvalMetrics:
        records = list(data)
        measured = target(records, self.phase)
        return evaluate_predictions(measured, self.predict(records))

    def coefficients(self) -> dict[str, float]:
        return self.model.coefficients()
