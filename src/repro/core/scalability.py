"""Scalability analysis (Section 4.3).

Turns a fitted :class:`~repro.core.training.TrainingStepModel` into
throughput-versus-nodes (Figure 8) and throughput-versus-batch-size
(Figure 9) curves, finds the diminishing-return turning point, and supports
both weak scaling (fixed per-device batch) and strong scaling (fixed global
batch) — predictions extend beyond the measured range, including batch
sizes that would exceed device memory.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.benchdata.records import ConvNetFeatures
from repro.core.epoch import throughput as _throughput
from repro.core.features import combined_bwd_grad_row, forward_row
from repro.core.regression import ExtrapolationWarning
from repro.core.training import TrainingStepModel

#: Default FIT004 extrapolation-domain multiple for scaling curves; pass
#: ``domain_factor=None`` to a curve function to silence the check.
DEFAULT_DOMAIN_FACTOR = 10.0


def _warn_extrapolation(
    model: TrainingStepModel,
    features: ConvNetFeatures,
    configs: Sequence[tuple[int, int, int]],
    factor: float | None,
) -> None:
    """Emit one :class:`ExtrapolationWarning` when a curve queries the
    fitted models beyond ``factor``× their fitted feature ranges.

    ``configs`` is the swept ``(batch, devices, nodes)`` set.  Scaling
    curves are ConvMeter's headline extrapolation surface (Figures 8/9
    predict past device memory and past the measured cluster), so the
    check warns — it never blocks — and aggregates the whole sweep into a
    single warning naming the worst violation (audit rule FIT004).
    """
    if factor is None or not configs:
        return
    violations = []
    fwd_rows = np.empty(
        (len(configs), len(model.forward.metric_names) + 1)
    )
    for i, (b, _, _) in enumerate(configs):
        fwd_rows[i] = forward_row(features, b, model.forward.metric_names)
    violations += model.forward.model.domain_violations(fwd_rows, factor)
    single = [
        model.bwd_grad._single_row(features, b)
        for b, _, n in configs
        if n == 1
    ]
    if single and model.bwd_grad.single.is_fitted:
        violations += model.bwd_grad.single.domain_violations(
            np.array(single), factor
        )
    multi = [
        combined_bwd_grad_row(features, b, d)
        for b, d, n in configs
        if n > 1
    ]
    if multi and model.bwd_grad.multi.is_fitted:
        violations += model.bwd_grad.multi.domain_violations(
            np.array(multi), factor
        )
    if violations:
        worst = max(violations, key=lambda v: v.excess)
        # Statically reachable from server threads via answer_request ->
        # _scaling_prediction, but the serve path always passes
        # domain_factor=None, which returns at the top of this function
        # before any warning; per-response warnings travel through the
        # thread-safe prediction_warnings list instead.
        warnings.warn(  # repro-lint: disable=CON006
            f"scaling curve extrapolates beyond {factor:g}x the fitted "
            f"range on {len(violations)} feature(s); worst: "
            f"{worst.describe()} (audit rule FIT004)",
            ExtrapolationWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scalability curve."""

    #: Sweep coordinate: node count (Fig. 8) or global batch size (Fig. 9).
    x: int
    #: Total computing devices at this point.
    devices: int
    #: Per-device mini-batch size.
    per_device_batch: int
    #: Predicted step time, seconds.
    step_time: float
    #: Predicted throughput, images/second.
    throughput: float
    #: Measured throughput (if available) and its standard deviation.
    measured: float | None = None
    measured_std: float | None = None


def node_scaling_curve(
    model: TrainingStepModel,
    features: ConvNetFeatures,
    per_device_batch: int,
    node_counts: Sequence[int],
    gpus_per_node: int = 4,
    domain_factor: float | None = DEFAULT_DOMAIN_FACTOR,
) -> list[ScalingPoint]:
    """Weak-scaling throughput prediction across node counts (Figure 8)."""
    configs = [
        (per_device_batch, n * gpus_per_node, n) for n in node_counts
    ]
    _warn_extrapolation(model, features, configs, domain_factor)
    totals = model.predict_configs(features, configs)
    return [
        ScalingPoint(
            x=nodes,
            devices=devices,
            per_device_batch=batch,
            step_time=step_time,
            throughput=_throughput(step_time, batch, devices),
        )
        for (batch, devices, nodes), step_time in zip(
            configs, totals.tolist()
        )
    ]


def strong_scaling_curve(
    model: TrainingStepModel,
    features: ConvNetFeatures,
    global_batch: int,
    node_counts: Sequence[int],
    gpus_per_node: int = 4,
    domain_factor: float | None = DEFAULT_DOMAIN_FACTOR,
) -> list[ScalingPoint]:
    """Strong-scaling prediction: the global batch stays fixed, so the
    per-device mini-batch shrinks as devices are added."""
    configs = []
    for nodes in node_counts:
        devices = nodes * gpus_per_node
        if global_batch % devices:
            raise ValueError(
                f"global batch {global_batch} not divisible by {devices} "
                "devices"
            )
        configs.append((global_batch // devices, devices, nodes))
    _warn_extrapolation(model, features, configs, domain_factor)
    totals = model.predict_configs(features, configs)
    return [
        ScalingPoint(
            x=nodes,
            devices=devices,
            per_device_batch=batch,
            step_time=step_time,
            throughput=_throughput(step_time, batch, devices),
        )
        for (batch, devices, nodes), step_time in zip(
            configs, totals.tolist()
        )
    ]


def batch_scaling_curve(
    model: TrainingStepModel,
    features: ConvNetFeatures,
    batch_sizes: Sequence[int],
    devices: int = 1,
    domain_factor: float | None = DEFAULT_DOMAIN_FACTOR,
) -> list[ScalingPoint]:
    """Throughput prediction across batch sizes (Figure 9).

    Works for any batch size — including ones beyond device memory, the
    paper's "simulating larger batch sizes" use case — because the model is
    linear in the batch factor, not bound by a measured grid.  Queries
    beyond ``domain_factor``× the fitted range raise an
    :class:`ExtrapolationWarning` (audit rule FIT004) but still predict.
    """
    configs = [(b, devices, 1) for b in batch_sizes]
    _warn_extrapolation(model, features, configs, domain_factor)
    totals = model.predict_configs(features, configs)
    return [
        ScalingPoint(
            x=batch * devices,
            devices=devices,
            per_device_batch=batch,
            step_time=step_time,
            throughput=_throughput(step_time, batch, devices),
        )
        for (batch, _, _), step_time in zip(configs, totals.tolist())
    ]


def turning_point(
    points: Sequence[ScalingPoint], min_gain: float = 1.25
) -> ScalingPoint:
    """The diminishing-return point of a scaling curve.

    Returns the first point after which doubling the sweep coordinate stops
    improving throughput by at least ``min_gain``×; if the curve keeps
    scaling, returns the last point.
    """
    if not points:
        raise ValueError("empty scaling curve")
    ordered = sorted(points, key=lambda p: p.x)
    for prev, nxt in zip(ordered, ordered[1:]):
        growth = nxt.x / prev.x
        gain = nxt.throughput / prev.throughput
        # Normalise the gain to a per-doubling rate.
        per_doubling = gain ** (1.0 / np.log2(growth)) if growth > 1 else gain
        if per_doubling < min_gain:
            return prev
    return ordered[-1]


def efficiency(points: Sequence[ScalingPoint]) -> list[float]:
    """Parallel efficiency relative to the first point of the curve."""
    if not points:
        raise ValueError("empty scaling curve")
    ordered = sorted(points, key=lambda p: p.devices)
    base = ordered[0]
    base_per_device = base.throughput / base.devices
    return [
        (p.throughput / p.devices) / base_per_device for p in ordered
    ]
