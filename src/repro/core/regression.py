"""Linear-regression engine.

ConvMeter deliberately uses plain linear regression (Section 3.1: "We opted
for the linear regression method for simplicity and also due to its
reasonably high performance within our context").  Two solvers are offered:

* ``"ols"`` — ordinary least squares via ``numpy.linalg.lstsq``;
* ``"nnls"`` — non-negative least squares via ``scipy.optimize.nnls``,
  useful when a model will be extrapolated far outside the fitted range
  (scalability curves) and negative runtime contributions would be
  unphysical.

Feature columns span ~10 orders of magnitude (FLOPs ~1e9 vs the intercept),
so columns are scaled to unit maximum before solving and the coefficients
are rescaled back — numerically equivalent, far better conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.optimize import nnls as _scipy_nnls


class ExtrapolationWarning(RuntimeWarning):
    """A prediction was requested far outside the fitted feature range.

    Linear extrapolation is a deliberate ConvMeter capability (Section 4.3
    simulates batch sizes beyond device memory), but the further a query
    strays from the fitted domain the less the coefficients are backed by
    data — so domain-checked paths warn instead of failing."""


@dataclass(frozen=True)
class DomainViolation:
    """One feature queried beyond the fitted range (audit rule FIT004)."""

    feature: str
    #: Worst offending query value for this feature.
    value: float
    #: Fitted [min, max] of the feature column.
    fitted_min: float
    fitted_max: float
    #: How far outside the allowed band the worst value lies, as a multiple
    #: of the fitted range boundary (2.0 = twice the allowed extreme).
    excess: float
    #: Number of query rows violating the band for this feature.
    n_rows: int

    def describe(self) -> str:
        return (
            f"{self.feature}={self.value:.6g} is outside "
            f"{self.excess:.1f}x the fitted range "
            f"[{self.fitted_min:.6g}, {self.fitted_max:.6g}] "
            f"({self.n_rows} query row{'s' if self.n_rows != 1 else ''})"
        )


def range_violations(
    X: np.ndarray,
    ranges: Sequence[tuple[float, float]],
    labels: Sequence[str],
    factor: float = 10.0,
) -> list[DomainViolation]:
    """Query rows outside ``factor``× the fitted per-feature ranges.

    The shared implementation behind :meth:`LinearModel.domain_violations`
    and the nonlinear predictor artifacts (``repro.baselines``): a value
    ``v`` of feature ``j`` violates the domain when ``v > factor * max_j``
    or (for strictly positive fitted columns) ``v < min_j / factor``.
    Returns one aggregated :class:`DomainViolation` per offending feature.
    """
    if factor <= 0:
        raise ValueError("extrapolation factor must be positive")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[None, :]
    if X.shape[1] != len(ranges):
        raise ValueError(
            f"query has {X.shape[1]} columns, fitted ranges cover "
            f"{len(ranges)}"
        )
    violations: list[DomainViolation] = []
    for j, (lo, hi) in enumerate(ranges):
        col = X[:, j]
        upper = factor * hi
        over = col > upper
        under = (
            col < lo / factor if lo > 0 else np.zeros_like(col, bool)
        )
        bad = over | under
        if not bad.any():
            continue
        # Worst offender: largest multiple beyond its violated bound.
        excess_over = np.where(
            over, col / upper, 0.0
        )
        with np.errstate(divide="ignore"):
            excess_under = np.where(
                under, (lo / factor) / np.maximum(col, 1e-300), 0.0
            )
        excess = np.maximum(excess_over, excess_under)
        worst = int(np.argmax(excess))
        violations.append(
            DomainViolation(
                feature=labels[j],
                value=float(col[worst]),
                fitted_min=lo,
                fitted_max=hi,
                excess=float(excess[worst] * factor),
                n_rows=int(bad.sum()),
            )
        )
    return violations


@dataclass
class LinearModel:
    """A fitted linear map ``y = X @ coef``.

    The design matrix convention throughout ConvMeter is that the intercept,
    when present, is an explicit all-ones column of ``X``.
    """

    method: str = "ols"
    #: "relative" re-weights each row by 1/y so the solver minimises
    #: *relative* residuals — measurements span five orders of magnitude
    #: (microseconds to minutes), and unweighted least squares would trade
    #: the entire small-configuration regime away for the largest records.
    #: "none" is plain least squares.
    weighting: str = "relative"
    coef: np.ndarray | None = field(default=None, repr=False)
    #: Column names, for reporting fitted coefficients.
    feature_names: tuple[str, ...] = ()
    #: Per-feature fitted ``(min, max)`` of the raw design columns, recorded
    #: at fit time and persisted with the model so extrapolation-domain
    #: checks (audit rule FIT004) survive a save/load round trip.
    feature_ranges: tuple[tuple[float, float], ...] | None = field(
        default=None, repr=False
    )
    #: Raw fit inputs, kept (in-process only, never persisted) so the
    #: fitted-model auditor can analyse the design without re-plumbing data.
    fit_design: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    fit_target: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )
    fit_weight: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearModel":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"rows of X ({X.shape[0]}) do not match y ({y.shape[0]})"
            )
        if X.shape[0] < X.shape[1]:
            raise ValueError(
                f"underdetermined fit: {X.shape[0]} rows for "
                f"{X.shape[1]} coefficients"
            )
        if sample_weight is None:
            if self.weighting == "relative":
                if np.any(y <= 0):
                    raise ValueError(
                        "relative weighting requires positive measurements"
                    )
                sample_weight = 1.0 / y
            elif self.weighting == "none":
                sample_weight = np.ones_like(y)
            else:
                raise ValueError(f"unknown weighting {self.weighting!r}")
        w = np.asarray(sample_weight, dtype=np.float64)
        if np.any(w < 0):
            raise ValueError("sample weights must be non-negative")
        dead = np.flatnonzero(np.abs(X).max(axis=0) == 0.0)
        if dead.size:
            # An all-zero column would silently divide the column scale away
            # and leave the coefficient meaningless; this is the runtime twin
            # of audit rule FIT003.
            labels = ", ".join(self.feature_labels(X.shape[1])[j] for j in dead)
            raise ValueError(
                f"design matrix column{'s' if dead.size != 1 else ''} "
                f"{labels} {'are' if dead.size != 1 else 'is'} identically "
                "zero; drop the feature or fix the metric extraction "
                "(audit rule FIT003)"
            )
        Xw = X * w[:, None]
        yw = y * w
        scale = np.abs(Xw).max(axis=0)
        scale[scale == 0.0] = 1.0
        Xs = Xw / scale
        if self.method == "ols":
            coef_s, *_ = np.linalg.lstsq(Xs, yw, rcond=None)
        elif self.method == "nnls":
            coef_s, _ = _scipy_nnls(Xs, yw)
        else:
            raise ValueError(f"unknown method {self.method!r}")
        self.coef = coef_s / scale
        self.feature_ranges = tuple(
            (float(lo), float(hi))
            for lo, hi in zip(X.min(axis=0), X.max(axis=0))
        )
        self.fit_design = X
        self.fit_target = y
        self.fit_weight = w
        return self

    @property
    def is_fitted(self) -> bool:
        return self.coef is not None

    def feature_labels(self, n: int | None = None) -> tuple[str, ...]:
        """Column labels: declared names, else positional ``c1..cn``."""
        if n is None:
            n = 0 if self.coef is None else self.coef.shape[0]
        if len(self.feature_names) == n:
            return self.feature_names
        return tuple(f"c{i + 1}" for i in range(n))

    def domain_violations(
        self, X: np.ndarray, factor: float = 10.0
    ) -> list[DomainViolation]:
        """Query rows outside ``factor``× the fitted feature ranges.

        A value ``v`` of feature ``j`` violates the domain when
        ``v > factor * max_j`` or (for strictly positive fitted columns)
        ``v < min_j / factor`` — the linear model still answers, but the
        answer is an extrapolation the fit never saw (audit rule FIT004).
        Returns one aggregated :class:`DomainViolation` per offending
        feature; empty when the model has no recorded ranges.
        """
        if self.feature_ranges is None:
            if factor <= 0:
                raise ValueError("extrapolation factor must be positive")
            return []
        X = np.asarray(X, dtype=np.float64)
        n_cols = X.shape[1] if X.ndim == 2 else X.shape[0]
        return range_violations(
            X, self.feature_ranges, self.feature_labels(n_cols), factor
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        # Columnwise left-to-right accumulation instead of ``X @ coef``:
        # BLAS picks a different reduction order for an (N, k) matmul than
        # for a single row, so the same query would predict differently
        # alone vs inside a batch.  This order is shape-invariant, which
        # the serve layer's batched-vs-sequential equivalence relies on.
        # The column loop below is a *deliberate* scalarization over the
        # feature axis (k <= 7 columns), not over the data axis — the
        # shape-invariant reduction order is the point.  PERF001 would
        # suggest X @ coef, which is exactly what must not happen here.
        total = X[:, 0] * self.coef[0]
        for column in range(1, X.shape[1]):  # repro-lint: disable=PERF001
            total = total + X[:, column] * self.coef[column]
        return total

    def coefficients(self) -> dict[str, float]:
        """Named coefficients for reporting."""
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        return dict(zip(self.feature_labels(), self.coef.tolist()))
