"""Linear-regression engine.

ConvMeter deliberately uses plain linear regression (Section 3.1: "We opted
for the linear regression method for simplicity and also due to its
reasonably high performance within our context").  Two solvers are offered:

* ``"ols"`` — ordinary least squares via ``numpy.linalg.lstsq``;
* ``"nnls"`` — non-negative least squares via ``scipy.optimize.nnls``,
  useful when a model will be extrapolated far outside the fitted range
  (scalability curves) and negative runtime contributions would be
  unphysical.

Feature columns span ~10 orders of magnitude (FLOPs ~1e9 vs the intercept),
so columns are scaled to unit maximum before solving and the coefficients
are rescaled back — numerically equivalent, far better conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import nnls as _scipy_nnls


@dataclass
class LinearModel:
    """A fitted linear map ``y = X @ coef``.

    The design matrix convention throughout ConvMeter is that the intercept,
    when present, is an explicit all-ones column of ``X``.
    """

    method: str = "ols"
    #: "relative" re-weights each row by 1/y so the solver minimises
    #: *relative* residuals — measurements span five orders of magnitude
    #: (microseconds to minutes), and unweighted least squares would trade
    #: the entire small-configuration regime away for the largest records.
    #: "none" is plain least squares.
    weighting: str = "relative"
    coef: np.ndarray | None = field(default=None, repr=False)
    #: Column names, for reporting fitted coefficients.
    feature_names: tuple[str, ...] = ()

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearModel":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"rows of X ({X.shape[0]}) do not match y ({y.shape[0]})"
            )
        if X.shape[0] < X.shape[1]:
            raise ValueError(
                f"underdetermined fit: {X.shape[0]} rows for "
                f"{X.shape[1]} coefficients"
            )
        if sample_weight is None:
            if self.weighting == "relative":
                if np.any(y <= 0):
                    raise ValueError(
                        "relative weighting requires positive measurements"
                    )
                sample_weight = 1.0 / y
            elif self.weighting == "none":
                sample_weight = np.ones_like(y)
            else:
                raise ValueError(f"unknown weighting {self.weighting!r}")
        w = np.asarray(sample_weight, dtype=np.float64)
        if np.any(w < 0):
            raise ValueError("sample weights must be non-negative")
        Xw = X * w[:, None]
        yw = y * w
        scale = np.abs(Xw).max(axis=0)
        scale[scale == 0.0] = 1.0
        Xs = Xw / scale
        if self.method == "ols":
            coef_s, *_ = np.linalg.lstsq(Xs, yw, rcond=None)
        elif self.method == "nnls":
            coef_s, _ = _scipy_nnls(Xs, yw)
        else:
            raise ValueError(f"unknown method {self.method!r}")
        self.coef = coef_s / scale
        return self

    @property
    def is_fitted(self) -> bool:
        return self.coef is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.coef.shape[0]:
            raise ValueError(
                f"design matrix has {X.shape[1]} columns, model expects "
                f"{self.coef.shape[0]}"
            )
        return X @ self.coef

    def coefficients(self) -> dict[str, float]:
        """Named coefficients for reporting."""
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        names = self.feature_names or tuple(
            f"c{i + 1}" for i in range(self.coef.shape[0])
        )
        return dict(zip(names, self.coef.tolist()))
