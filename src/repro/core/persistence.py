"""Saving and loading fitted performance models.

A fitted ConvMeter model is just named coefficients plus its structural
configuration, so persistence is a small JSON document — the property the
paper highlights ("we only need to compute and store a few coefficients").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.forward import ForwardModel
from repro.core.regression import LinearModel
from repro.core.training import (
    BackwardModel,
    CombinedBwdGradModel,
    GradientUpdateModel,
    TrainingStepModel,
)

_FORMAT_VERSION = 1


def _linear_state(model: LinearModel) -> dict[str, Any]:
    return {
        "method": model.method,
        "weighting": model.weighting,
        "feature_names": list(model.feature_names),
        "coef": None if model.coef is None else model.coef.tolist(),
    }


def _restore_linear(state: dict[str, Any]) -> LinearModel:
    model = LinearModel(
        method=state["method"],
        weighting=state["weighting"],
        feature_names=tuple(state["feature_names"]),
    )
    if state["coef"] is not None:
        model.coef = np.asarray(state["coef"], dtype=np.float64)
    return model


def model_to_dict(model: object) -> dict[str, Any]:
    """Serialise any fitted ConvMeter model to a JSON-safe dict."""
    if isinstance(model, ForwardModel):  # covers BackwardModel too
        kind = (
            "backward" if isinstance(model, BackwardModel) else "forward"
        )
        return {
            "format": _FORMAT_VERSION,
            "kind": kind,
            "metric_names": list(model.metric_names),
            "phase": model.phase,
            "linear": _linear_state(model.model),
        }
    if isinstance(model, GradientUpdateModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "grad_update",
            "multi_node": model.multi_node,
            "linear": _linear_state(model.model),
        }
    if isinstance(model, CombinedBwdGradModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "combined_bwd_grad",
            "method": model.method,
            "single": _linear_state(model.single),
            "multi": _linear_state(model.multi),
        }
    if isinstance(model, TrainingStepModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "training_step",
            "forward": model_to_dict(model.forward),
            "bwd_grad": model_to_dict(model.bwd_grad),
        }
    raise TypeError(f"cannot serialise {type(model).__name__}")


def model_from_dict(state: dict[str, Any]) -> object:
    """Inverse of :func:`model_to_dict`."""
    if state.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format {state.get('format')!r}"
        )
    kind = state["kind"]
    if kind in ("forward", "backward"):
        model = (
            BackwardModel()
            if kind == "backward"
            else ForwardModel(
                metric_names=tuple(state["metric_names"]),
                phase=state["phase"],
            )
        )
        model.model = _restore_linear(state["linear"])
        return model
    if kind == "grad_update":
        model = GradientUpdateModel(multi_node=state["multi_node"])
        model.model = _restore_linear(state["linear"])
        return model
    if kind == "combined_bwd_grad":
        model = CombinedBwdGradModel(method=state["method"])
        model.single = _restore_linear(state["single"])
        model.multi = _restore_linear(state["multi"])
        return model
    if kind == "training_step":
        model = TrainingStepModel()
        model.forward = model_from_dict(state["forward"])
        model.bwd_grad = model_from_dict(state["bwd_grad"])
        return model
    raise ValueError(f"unknown model kind {kind!r}")


def save_model(model: object, path: str | Path) -> None:
    """Write a fitted model to a JSON file."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=2))


def load_model(path: str | Path) -> object:
    """Load a fitted model saved by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
