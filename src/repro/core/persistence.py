"""Saving and loading fitted performance models.

A fitted ConvMeter model is just named coefficients plus its structural
configuration, so persistence is a small JSON document — the property the
paper highlights ("we only need to compute and store a few coefficients").

Format history:

* **1** — coefficients and structure only.
* **2** — adds per-feature fitted ranges to every linear state (enabling
  extrapolation-domain checks, audit rule FIT004, after a load) and embeds
  the fitted-model audit block (``repro.analysis.audit``) at the top level
  so a saved artifact carries its own bill of health.  Version-1 documents
  load unchanged — they simply have no ranges and no audit block.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.forward import ForwardModel
from repro.core.regression import LinearModel
from repro.core.training import (
    BackwardModel,
    CombinedBwdGradModel,
    GradientUpdateModel,
    TrainingStepModel,
)

_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)

#: Audit gate modes accepted by :func:`save_model` / ``repro fit --audit``.
AUDIT_MODES = ("warn", "strict", "off")


def _linear_state(model: LinearModel) -> dict[str, Any]:
    return {
        "method": model.method,
        "weighting": model.weighting,
        "feature_names": list(model.feature_names),
        "coef": None if model.coef is None else model.coef.tolist(),
        "feature_ranges": (
            None
            if model.feature_ranges is None
            else [[lo, hi] for lo, hi in model.feature_ranges]
        ),
    }


def _restore_linear(state: dict[str, Any]) -> LinearModel:
    model = LinearModel(
        method=state["method"],
        weighting=state["weighting"],
        feature_names=tuple(state["feature_names"]),
    )
    if state["coef"] is not None:
        model.coef = np.asarray(state["coef"], dtype=np.float64)
    ranges = state.get("feature_ranges")
    if ranges is not None:
        model.feature_ranges = tuple(
            (float(lo), float(hi)) for lo, hi in ranges
        )
    return model


def _model_state(model: object) -> dict[str, Any]:
    """Structural serialisation (no audit block)."""
    if isinstance(model, ForwardModel):  # covers BackwardModel too
        kind = (
            "backward" if isinstance(model, BackwardModel) else "forward"
        )
        return {
            "format": _FORMAT_VERSION,
            "kind": kind,
            "metric_names": list(model.metric_names),
            "phase": model.phase,
            "linear": _linear_state(model.model),
        }
    if isinstance(model, GradientUpdateModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "grad_update",
            "multi_node": model.multi_node,
            "linear": _linear_state(model.model),
        }
    if isinstance(model, CombinedBwdGradModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "combined_bwd_grad",
            "method": model.method,
            "single": _linear_state(model.single),
            "multi": _linear_state(model.multi),
        }
    if isinstance(model, TrainingStepModel):
        return {
            "format": _FORMAT_VERSION,
            "kind": "training_step",
            "forward": _model_state(model.forward),
            "bwd_grad": _model_state(model.bwd_grad),
        }
    # Imported here: persistence is core-layer, the learned predictors live
    # above it in repro.baselines.
    from repro.baselines.protocol import LearnedPredictor

    if isinstance(model, LearnedPredictor):
        return {
            "format": _FORMAT_VERSION,
            "kind": model.kind,
            "predictor": model.to_state(),
        }
    raise TypeError(f"cannot serialise {type(model).__name__}")


def _audit_block(model: object) -> dict[str, Any]:
    """Run the fitted-model auditor and shape its findings for embedding."""
    # Imported here: persistence is core-layer, the auditor lives above it
    # in repro.analysis.
    from repro.analysis.audit import audit_model
    from repro.diagnostics import Severity, count_by_severity

    diagnostics = audit_model(model)
    counts = count_by_severity(diagnostics)
    return {
        "errors": counts[Severity.ERROR],
        "warnings": counts[Severity.WARN],
        "infos": counts[Severity.INFO],
        "diagnostics": [d.to_dict() for d in diagnostics],
    }


def model_to_dict(model: object, audit: bool = True) -> dict[str, Any]:
    """Serialise any fitted ConvMeter model to a JSON-safe dict.

    ``audit=True`` (default) embeds the fitted-model audit block so the
    persisted artifact records the statistical health of its coefficients
    at save time.
    """
    state = _model_state(model)
    if audit:
        state["audit"] = _audit_block(model)
    return state


def model_from_dict(state: dict[str, Any]) -> object:
    """Inverse of :func:`model_to_dict`.

    Accepts every supported format version; version-1 documents (no
    feature ranges, no audit block) load without warnings.
    """
    if state.get("format") not in _SUPPORTED_FORMATS:
        raise ValueError(
            f"unsupported model format {state.get('format')!r}"
        )
    kind = state["kind"]
    if kind in ("forward", "backward"):
        model = (
            BackwardModel()
            if kind == "backward"
            else ForwardModel(
                metric_names=tuple(state["metric_names"]),
                phase=state["phase"],
            )
        )
        model.model = _restore_linear(state["linear"])
        return model
    if kind == "grad_update":
        model = GradientUpdateModel(multi_node=state["multi_node"])
        model.model = _restore_linear(state["linear"])
        return model
    if kind == "combined_bwd_grad":
        model = CombinedBwdGradModel(method=state["method"])
        model.single = _restore_linear(state["single"])
        model.multi = _restore_linear(state["multi"])
        return model
    if kind == "training_step":
        model = TrainingStepModel()
        model.forward = model_from_dict(state["forward"])
        model.bwd_grad = model_from_dict(state["bwd_grad"])
        return model
    from repro.baselines import LEARNED_KINDS, predictor_from_state

    if kind in LEARNED_KINDS:
        return predictor_from_state(kind, state["predictor"])
    raise ValueError(f"unknown model kind {kind!r}")


def save_model(model: object, path: str | Path, audit: str = "warn") -> None:
    """Write a fitted model to a JSON file, audit-gated.

    ``audit`` is the persistence gate of the fitted-model auditor:

    * ``"warn"`` (default) — embed the audit block; if it contains ERROR
      findings, emit a :class:`RuntimeWarning` naming the first one but
      save anyway.
    * ``"strict"`` — refuse to persist a model whose audit has ERROR
      findings (raises :class:`~repro.analysis.audit.ModelAuditError`).
    * ``"off"`` — skip the auditor entirely (no audit block is embedded).
    """
    if audit not in AUDIT_MODES:
        raise ValueError(
            f"unknown audit mode {audit!r}; options: {', '.join(AUDIT_MODES)}"
        )
    state = model_to_dict(model, audit=audit != "off")
    block = state.get("audit")
    if block and block["errors"]:
        if audit == "strict":
            from repro.analysis.audit import ModelAuditError
            from repro.diagnostics import Diagnostic, Severity

            raise ModelAuditError(
                [
                    Diagnostic(
                        d["rule"], Severity[d["severity"]], d["location"],
                        d["message"], d["hint"],
                    )
                    for d in block["diagnostics"]
                ]
            )
        first = block["diagnostics"][0]
        warnings.warn(
            f"persisting a model with {block['errors']} audit ERROR"
            f"{'s' if block['errors'] != 1 else ''} "
            f"(first: [{first['rule']}] {first['message']}); "
            "run `repro audit` for the full report",
            RuntimeWarning,
            stacklevel=2,
        )
    Path(path).write_text(json.dumps(state, indent=2))


def load_model(path: str | Path) -> object:
    """Load a fitted model saved by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))


def load_audit_block(path: str | Path) -> dict[str, Any] | None:
    """The audit block embedded in a saved model, or None (v1 documents,
    or models saved with ``audit="off"``)."""
    return json.loads(Path(path).read_text()).get("audit")
