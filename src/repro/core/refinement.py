"""Model-specific coefficient refinement (Section 4.3).

"Suppose we are interested in the scalability of known models instead of
predicting the runtime of unknown models.  In that case, we can tune the
coefficients based on a specific ConvNet of interest to predict its
scalability more accurately.  We do not need to rerun benchmarks and can
reuse the data and apply the regression on the specific ConvNet."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.benchdata.records import Dataset, TimingRecord
from repro.core.metrics import EvalMetrics, evaluate_predictions


@dataclass(frozen=True)
class RefinementComparison:
    """Accuracy of the generic (leave-one-out) vs refined (model-specific)
    coefficients on the same ConvNet."""

    model: str
    generic: EvalMetrics
    refined: EvalMetrics

    @property
    def mape_improvement(self) -> float:
        """Fraction of the generic MAPE removed by refinement."""
        if self.generic.mape == 0.0:
            return 0.0
        return 1.0 - self.refined.mape / self.generic.mape


def model_specific_fit(
    data: Dataset,
    model_name: str,
    factory: Callable[[], object],
):
    """Refit a predictor on one ConvNet's existing campaign records.

    No new benchmarks are run; the returned predictor trades generality
    for accuracy on this one network.
    """
    own = data.for_model(model_name)
    if len(own) == 0:
        raise ValueError(f"no records for model {model_name!r}")
    predictor = factory()
    predictor.fit(own)
    return predictor


def compare_refinement(
    data: Dataset,
    model_name: str,
    factory: Callable[[], object],
    measured_of: Callable[[TimingRecord], float],
    holdout_fraction: float = 0.5,
    seed: int = 0,
) -> RefinementComparison:
    """Quantify the refinement gain on held-out records of one ConvNet.

    The model's own records are split in two; the refined predictor is
    fitted on one half and both predictors are scored on the other, so the
    refined model never sees its evaluation records.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    own = list(data.for_model(model_name))
    if len(own) < 4:
        raise ValueError("need at least 4 records to split for refinement")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(own))
    n_eval = max(1, int(len(own) * holdout_fraction))
    eval_records = [own[i] for i in order[:n_eval]]
    fit_records = [own[i] for i in order[n_eval:]]

    generic = factory()
    generic.fit(data.excluding_model(model_name))
    refined = factory()
    refined.fit(Dataset(fit_records))

    measured = np.array([measured_of(r) for r in eval_records])
    return RefinementComparison(
        model=model_name,
        generic=evaluate_predictions(
            measured, np.asarray(generic.predict(eval_records))
        ),
        refined=evaluate_predictions(
            measured, np.asarray(refined.predict(eval_records))
        ),
    )
