"""Table 1 + Figure 3: per-ConvNet inference accuracy on CPU and GPU.

Leave-one-out protocol: each ConvNet's rows come from a model fitted on all
*other* ConvNets' measurements.  The figure's scatter data (measured vs
predicted pairs) is included in the result for series rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.forward import ForwardModel
from repro.core.loo import LeaveOneOutResult, leave_one_out
from repro.experiments.common import cpu_inference_data, gpu_inference_data
from repro.zoo.registry import get_entry


@dataclass(frozen=True)
class Table1Result:
    cpu: LeaveOneOutResult
    gpu: LeaveOneOutResult

    def rows(self) -> list[dict[str, object]]:
        rows = []
        models = sorted(
            set(self.cpu.per_model) | set(self.gpu.per_model),
            key=lambda m: get_entry(m).display.lower(),
        )
        for model in models:
            display = get_entry(model).display
            row: dict[str, object] = {"model": display}
            if model in self.cpu.per_model:
                m = self.cpu.per_model[model]
                row.update(
                    cpu_r2=m.r2, cpu_rmse_s=m.rmse, cpu_nrmse=m.nrmse,
                    cpu_mape=m.mape,
                )
            if model in self.gpu.per_model:
                m = self.gpu.per_model[model]
                row.update(
                    gpu_r2=m.r2, gpu_rmse_ms=m.rmse * 1e3, gpu_nrmse=m.nrmse,
                    gpu_mape=m.mape,
                )
            rows.append(row)
        return rows

    def render(self) -> str:
        table = format_table(
            self.rows(),
            [
                ("model", None),
                ("cpu_r2", ".3f"),
                ("cpu_rmse_s", ".3f"),
                ("cpu_nrmse", ".2f"),
                ("cpu_mape", ".2f"),
                ("gpu_r2", ".3f"),
                ("gpu_rmse_ms", ".2f"),
                ("gpu_nrmse", ".2f"),
                ("gpu_mape", ".2f"),
            ],
            title="Table 1 — per-ConvNet inference prediction (LOO)",
        )
        footer = (
            f"\nFigure 3 pooled: CPU {self.cpu.pooled}"
            f"\n                 GPU {self.gpu.pooled}"
        )
        return table + footer


def run_table1() -> Table1Result:
    factory = lambda: ForwardModel()  # noqa: E731 - tiny factory
    measured = lambda r: r.t_fwd  # noqa: E731
    return Table1Result(
        cpu=leave_one_out(cpu_inference_data(), factory, measured),
        gpu=leave_one_out(gpu_inference_data(), factory, measured),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().render())
