"""Shared experiment configuration and cached campaign construction.

Campaign datasets are deterministic in their arguments (the simulator's
noise is seeded), so experiments share one cached copy per scenario instead
of re-measuring — the same way the paper reuses one benchmark corpus across
its evaluation sections.

Set ``REPRO_CAMPAIGN_WORKERS=N`` to fan campaign generation out over N
worker processes (the benchmark harness exposes this as
``--campaign-workers``).  Records are byte-identical to serial runs, so
every experiment artefact is unchanged — only the wall clock moves.

Set ``REPRO_CAMPAIGN_BACKEND=<name>`` to re-run the GPU-device experiment
campaigns under a registered execution backend (``edge``, ``fp16``, … —
see ``repro devices``).  Unset, everything is measured by the default
roofline backend, bit-identical to the pre-backend corpus.  The
single-CPU-core inference campaign always stays on the default backend:
the GPU-flavoured backends reject CPU presets by construction.
"""

from __future__ import annotations

import os

from repro.benchdata import (
    Dataset,
    block_campaign,
    distributed_campaign,
    inference_campaign,
    training_campaign,
)
from repro.caching import LRUCache
from repro.hardware.device import (
    A100_80GB,
    XEON_GOLD_5318Y_CORE,
    DeviceSpec,
    get_device,
)

#: Campaign seeds: one per scenario, so scenarios are independent samples.
SEED_INFERENCE_GPU = 7
SEED_INFERENCE_CPU = 8
SEED_BLOCKS = 9
SEED_TRAINING = 11
SEED_DISTRIBUTED = 13
#: Held-out seed for fresh measurements (never used for fitting).
SEED_EVAL = 99

#: Runtime cap for the single-CPU-core campaign (Section 4 runs CPU
#: inference only up to ~10 s wall time per point).
CPU_MAX_SECONDS = 20.0

GPU = A100_80GB
CPU = XEON_GOLD_5318Y_CORE

#: Node counts of the paper's cluster scaling experiments.
NODE_COUNTS = (1, 2, 4, 8)
GPUS_PER_NODE = 4


def campaign_workers() -> int:
    """Worker-process count for campaign generation (0/1 = in-process)."""
    try:
        return int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "0"))
    except ValueError:
        return 0


def campaign_backend() -> str:
    """Execution backend for the GPU experiment campaigns ("" = roofline)."""
    name = os.environ.get("REPRO_CAMPAIGN_BACKEND", "")
    return "" if name == "roofline" else name


#: One cached dataset per scenario (the five functions below), bounded and
#: observable — `repro lint` bans unbounded ``functools.lru_cache`` repo-wide.
DATASET_CACHE: LRUCache[str, Dataset] = LRUCache(maxsize=8)


def gpu_inference_data() -> Dataset:
    backend = campaign_backend()
    return DATASET_CACHE.get_or_compute(
        f"gpu-inference:{backend}",
        lambda: inference_campaign(
            device=GPU, seed=SEED_INFERENCE_GPU, workers=campaign_workers(),
            backend=backend,
        ),
    )


def cpu_inference_data() -> Dataset:
    return DATASET_CACHE.get_or_compute(
        "cpu-inference",
        lambda: inference_campaign(
            device=CPU, seed=SEED_INFERENCE_CPU,
            max_seconds=CPU_MAX_SECONDS, workers=campaign_workers(),
        ),
    )


def block_data() -> Dataset:
    return DATASET_CACHE.get_or_compute(
        "blocks",
        lambda: block_campaign(
            device=GPU, seed=SEED_BLOCKS, workers=campaign_workers()
        ),
    )


def training_data() -> Dataset:
    backend = campaign_backend()
    return DATASET_CACHE.get_or_compute(
        f"training:{backend}",
        lambda: training_campaign(
            device=GPU, seed=SEED_TRAINING, workers=campaign_workers(),
            backend=backend,
        ),
    )


def distributed_data() -> Dataset:
    backend = campaign_backend()
    return DATASET_CACHE.get_or_compute(
        f"distributed:{backend}",
        lambda: distributed_campaign(
            node_counts=NODE_COUNTS,
            gpus_per_node=GPUS_PER_NODE,
            device=GPU,
            seed=SEED_DISTRIBUTED,
            workers=campaign_workers(),
            backend=backend,
        ),
    )


def device_by_name(name: str) -> DeviceSpec:
    return get_device(name)
