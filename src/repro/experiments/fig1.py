"""Figure 1: the anatomy of a synchronous training step.

The paper's background figure (after Pauloski et al.) shows a step as
forward pass, backward pass, and bucketed gradient synchronisation
overlapping the backward sweep.  Our realisation is the distributed
trainer's timeline: this experiment renders it for a reference
configuration and verifies the structural properties the figure depicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.cluster import ClusterSpec
from repro.distributed.timeline import trace_to_text
from repro.distributed.trainer import DistributedTrainer, TrainingStepTrace
from repro.experiments.common import GPU, SEED_EVAL
from repro.hardware.roofline import zoo_profile

FIG1_MODEL = "resnet50"
FIG1_IMAGE = 128
FIG1_BATCH = 64
FIG1_NODES = 2


@dataclass(frozen=True)
class Fig1Result:
    trace: TrainingStepTrace
    model: str

    @property
    def has_bucketed_sync(self) -> bool:
        """Gradients synchronise in buckets (the figure's B1…Bn boxes)."""
        return len(self.trace.buckets) >= 2

    @property
    def sync_overlaps_backward(self) -> bool:
        """At least one bucket starts before the backward pass ends."""
        return any(
            b.start < self.trace.backward_end for b in self.trace.buckets
        )

    @property
    def buckets_in_reverse_layer_order(self) -> bool:
        """Buckets are filled by gradients of later layers first."""
        indices = [b.bucket.tensor_indices for b in self.trace.buckets]
        flat = [i for idx in indices for i in idx]
        return flat == sorted(flat)

    def render(self) -> str:
        header = (
            f"Figure 1 — synchronous training step timeline "
            f"({self.model}, {FIG1_NODES} nodes x 4 GPUs, "
            f"batch {FIG1_BATCH}/device)\n"
        )
        return header + trace_to_text(self.trace)


def run_fig1(
    model: str = FIG1_MODEL,
    nodes: int = FIG1_NODES,
) -> Fig1Result:
    cluster = ClusterSpec(nodes=nodes, gpus_per_node=4, device=GPU)
    trainer = DistributedTrainer(cluster, seed=SEED_EVAL)
    trace = trainer.run_step(zoo_profile(model, FIG1_IMAGE), FIG1_BATCH)
    return Fig1Result(trace=trace, model=model)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig1().render())
