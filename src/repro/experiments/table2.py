"""Table 2 + Figure 4: block-wise inference prediction on the GPU.

The nine blocks of the catalogue are benchmarked as standalone subgraphs;
accuracy is reported per block with the same leave-one-out discipline
(each block evaluated by a model that never saw its measurements).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.blockwise import blockwise_evaluation
from repro.core.loo import LeaveOneOutResult
from repro.experiments.common import block_data
from repro.zoo.blocks import block_by_name


@dataclass(frozen=True)
class Table2Result:
    loo: LeaveOneOutResult

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for block, metrics in self.loo.per_model.items():
            spec = block_by_name(block)
            rows.append(
                {
                    "block": block,
                    "source": spec.display_source,
                    "rmse_ms": metrics.rmse * 1e3,
                    "nrmse": metrics.nrmse,
                    "mape": metrics.mape,
                    "r2": metrics.r2,
                }
            )
        return rows

    def render(self) -> str:
        table = format_table(
            self.rows(),
            [
                ("block", None),
                ("source", None),
                ("rmse_ms", ".2f"),
                ("nrmse", ".2f"),
                ("mape", ".2f"),
                ("r2", ".3f"),
            ],
            title="Table 2 — block-wise inference prediction (GPU, LOO)",
        )
        return table + f"\nFigure 4 pooled: {self.loo.pooled}"


def run_table2() -> Table2Result:
    return Table2Result(loo=blockwise_evaluation(block_data()))


if __name__ == "__main__":  # pragma: no cover
    print(run_table2().render())
