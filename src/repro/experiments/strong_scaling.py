"""Strong-scaling prediction (Section 4.3 extension).

"Since our prediction works with a variable number of nodes and batch
sizes, we can predict both weak scaling and strong scaling."  The weak
case is Figure 8; this experiment exercises the strong case: the *global*
batch is fixed, so the per-device mini-batch shrinks as nodes are added
and device utilisation falls — scaling efficiency must drop faster than in
the weak case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_series
from repro.benchdata.records import ConvNetFeatures
from repro.core.scalability import ScalingPoint, strong_scaling_curve
from repro.core.training import TrainingStepModel
from repro.distributed.cluster import ClusterSpec
from repro.distributed.trainer import DistributedTrainer
from repro.experiments.common import (
    GPU,
    GPUS_PER_NODE,
    SEED_EVAL,
    distributed_data,
)
from repro.hardware.roofline import zoo_profile
from repro.zoo.registry import get_entry

STRONG_MODELS: tuple[str, ...] = ("resnet50", "vgg16", "mobilenet_v2")
STRONG_IMAGE = 128
GLOBAL_BATCH = 1024
NODE_COUNTS: tuple[int, ...] = (1, 2, 4, 8)
REPS = 3


@dataclass(frozen=True)
class StrongScalingCurve:
    model: str
    points: tuple[ScalingPoint, ...]

    @property
    def predicted_step_times(self) -> list[float]:
        return [p.step_time for p in self.points]

    @property
    def measured_step_times(self) -> list[float]:
        return [p.measured for p in self.points]

    def speedup(self) -> float:
        """Predicted step-time speedup from fewest to most nodes."""
        return self.points[0].step_time / self.points[-1].step_time


@dataclass(frozen=True)
class StrongScalingResult:
    curves: dict[str, StrongScalingCurve]
    node_counts: tuple[int, ...]

    def trend_agreement(self, model: str) -> float:
        curve = self.curves[model]
        pred = np.array(curve.predicted_step_times)
        meas = np.array(curve.measured_step_times)
        if np.std(pred) == 0 or np.std(meas) == 0:
            return 0.0
        return float(np.corrcoef(pred, meas)[0, 1])

    def render(self) -> str:
        sections = []
        for model, curve in self.curves.items():
            display = get_entry(model).display
            sections.append(
                format_series(
                    list(self.node_counts),
                    {
                        "pred_step_ms": [
                            t * 1e3 for t in curve.predicted_step_times
                        ],
                        "meas_step_ms": [
                            t * 1e3 for t in curve.measured_step_times
                        ],
                    },
                    x_label="nodes",
                    value_format=".1f",
                    title=(
                        f"Strong scaling — {display} (global batch "
                        f"{GLOBAL_BATCH}, image {STRONG_IMAGE})"
                    ),
                )
            )
        return "\n\n".join(sections)


def run_strong_scaling(
    models: tuple[str, ...] = STRONG_MODELS,
    node_counts: tuple[int, ...] = NODE_COUNTS,
    global_batch: int = GLOBAL_BATCH,
) -> StrongScalingResult:
    fit_data = distributed_data()
    curves: dict[str, StrongScalingCurve] = {}
    for model in models:
        step_model = TrainingStepModel().fit(fit_data.excluding_model(model))
        profile = zoo_profile(model, STRONG_IMAGE)
        features = ConvNetFeatures.from_profile(profile)
        predicted = strong_scaling_curve(
            step_model, features, global_batch, node_counts, GPUS_PER_NODE
        )
        points = []
        for point in predicted:
            cluster = ClusterSpec(
                nodes=point.x, gpus_per_node=GPUS_PER_NODE, device=GPU
            )
            trainer = DistributedTrainer(cluster, seed=SEED_EVAL)
            totals = np.array(
                [
                    trainer.measure_step(
                        profile,
                        point.per_device_batch,
                        rep=rep,
                        enforce_memory=False,
                    ).total
                    for rep in range(REPS)
                ]
            )
            points.append(
                ScalingPoint(
                    x=point.x,
                    devices=point.devices,
                    per_device_batch=point.per_device_batch,
                    step_time=point.step_time,
                    throughput=point.throughput,
                    measured=float(totals.mean()),
                    measured_std=float(totals.std()),
                )
            )
        curves[model] = StrongScalingCurve(model=model, points=tuple(points))
    return StrongScalingResult(curves=curves, node_counts=tuple(node_counts))


if __name__ == "__main__":  # pragma: no cover
    print(run_strong_scaling().render())
