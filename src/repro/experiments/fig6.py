"""Figure 6: ConvMeter vs DIPPM inference-prediction error per ConvNet.

Protocol from Section 4.1.3: fixed 128×128 images, batch sizes from 16 to
2000.  Both predictors are evaluated on models excluded from their training
data; fresh held-out measurements (a seed never used for fitting) are the
ground truth.  DIPPM's stand-in cannot parse SqueezeNet, as the original
could not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.dippm import DippmSurrogate, GraphUnsupportedError
from repro.benchdata import DEFAULT_MODELS
from repro.benchdata.records import ConvNetFeatures
from repro.core.forward import ForwardModel
from repro.core.metrics import evaluate_predictions
from repro.experiments.common import GPU, SEED_EVAL, gpu_inference_data
from repro.hardware.executor import SimulatedExecutor
from repro.hardware.roofline import zoo_profile
from repro.zoo.registry import get_entry

#: Section 4.1.3 protocol: image 128, batches 16 … 2000.
EVAL_BATCHES: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2000)
EVAL_IMAGE = 128


@dataclass(frozen=True)
class Fig6Row:
    model: str
    convmeter_mape: float
    convmeter_nrmse: float
    dippm_mape: float | None
    dippm_nrmse: float | None

    @property
    def convmeter_wins(self) -> bool | None:
        if self.dippm_mape is None:
            return None
        return self.convmeter_mape < self.dippm_mape


@dataclass(frozen=True)
class Fig6Result:
    rows_data: tuple[Fig6Row, ...]

    @property
    def convmeter_wins_everywhere(self) -> bool:
        return all(
            row.convmeter_wins
            for row in self.rows_data
            if row.convmeter_wins is not None
        )

    @property
    def unparseable_models(self) -> list[str]:
        return [r.model for r in self.rows_data if r.dippm_mape is None]

    def rows(self) -> list[dict[str, object]]:
        out = []
        for r in self.rows_data:
            out.append(
                {
                    "model": get_entry(r.model).display,
                    "convmeter_mape": r.convmeter_mape,
                    "dippm_mape": r.dippm_mape,
                    "convmeter_nrmse": r.convmeter_nrmse,
                    "dippm_nrmse": r.dippm_nrmse,
                }
            )
        return out

    def render(self) -> str:
        return format_table(
            self.rows(),
            [
                ("model", None),
                ("convmeter_mape", ".3f"),
                ("dippm_mape", ".3f"),
                ("convmeter_nrmse", ".3f"),
                ("dippm_nrmse", ".3f"),
            ],
            title=(
                "Figure 6 — ConvMeter vs DIPPM "
                f"(image {EVAL_IMAGE}, batches {EVAL_BATCHES[0]}–"
                f"{EVAL_BATCHES[-1]})"
            ),
        )


def run_fig6(models: tuple[str, ...] = DEFAULT_MODELS) -> Fig6Result:
    fit_data = gpu_inference_data()
    executor = SimulatedExecutor(GPU, seed=SEED_EVAL)
    rows: list[Fig6Row] = []
    for model in models:
        others = [m for m in models if m != model]
        profile = zoo_profile(model, EVAL_IMAGE)
        features = ConvNetFeatures.from_profile(profile)
        measured = np.array(
            [
                executor.measure_inference(profile, b, enforce_memory=False)
                for b in EVAL_BATCHES
            ]
        )
        convmeter = ForwardModel().fit(fit_data.excluding_model(model))
        cm_pred = np.array(
            [convmeter.predict_one(features, b) for b in EVAL_BATCHES]
        )
        cm = evaluate_predictions(measured, cm_pred)

        dippm_mape = dippm_nrmse = None
        try:
            surrogate = DippmSurrogate(device=GPU, seed=5).train(list(others))
            dp_pred = np.array(
                [surrogate.predict_model(model, b) for b in EVAL_BATCHES]
            )
            dp = evaluate_predictions(measured, dp_pred)
            dippm_mape, dippm_nrmse = dp.mape, dp.nrmse
        except GraphUnsupportedError:
            pass
        rows.append(
            Fig6Row(
                model=model,
                convmeter_mape=cm.mape,
                convmeter_nrmse=cm.nrmse,
                dippm_mape=dippm_mape,
                dippm_nrmse=dippm_nrmse,
            )
        )
    return Fig6Result(rows_data=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig6().render())
