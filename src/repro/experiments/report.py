"""One-shot report generator: regenerate every paper artefact as markdown.

``python -m repro.experiments.report`` (or ``repro experiment`` per
artefact) re-runs the full evaluation and emits a self-contained markdown
document — the executable counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.strong_scaling import run_strong_scaling
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3_distributed import run_table3_distributed
from repro.experiments.table3_single import run_table3_single
from repro.experiments.table4 import run_table4

#: (section title, runner) in paper order.
ALL_EXPERIMENTS: tuple[tuple[str, Callable], ...] = (
    ("Figure 1 — training-step anatomy", run_fig1),
    ("Figure 2 — metric-set ablation", run_fig2),
    ("Table 1 + Figure 3 — whole-model inference", run_table1),
    ("Table 2 + Figure 4 — block-wise inference", run_table2),
    ("Figure 6 — ConvMeter vs DIPPM", run_fig6),
    ("Table 3 + Figure 5 — single-GPU training", run_table3_single),
    ("Table 3 + Figure 7 — distributed training", run_table3_distributed),
    ("Figure 8 — throughput vs nodes", run_fig8),
    ("Figure 9 — throughput vs batch size", run_fig9),
    ("Table 4 — related work", run_table4),
    ("Strong scaling (extension)", run_strong_scaling),
)


def generate_markdown(
    experiments: Sequence[tuple[str, Callable]] = ALL_EXPERIMENTS,
    include_timings: bool = True,
) -> str:
    """Run the given experiments and render one markdown document."""
    sections = [
        "# ConvMeter evaluation report",
        "",
        "Regenerated from the current simulator and model code; compare "
        "against the committed EXPERIMENTS.md for the paper-vs-measured "
        "discussion.",
    ]
    for title, runner in experiments:
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        sections.append("")
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(result.render())
        sections.append("```")
        if include_timings:
            sections.append(f"*(regenerated in {elapsed:.1f} s)*")
    return "\n".join(sections) + "\n"


def write_report(path: str | Path, **kwargs) -> None:
    Path(path).write_text(generate_markdown(**kwargs))


if __name__ == "__main__":  # pragma: no cover
    print(generate_markdown())
