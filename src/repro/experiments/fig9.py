"""Figure 9: throughput (images/s) vs batch size, per ConvNet.

Fixed image size, single A100, batch swept 1…2048 and *beyond device
memory* — the prediction extends past the measured range because the model
is linear in the batch factor (Section 4.3's "simulating larger batch
sizes").  ResNet18 and SqueezeNet must show the most pronounced diminishing
returns at large batches.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import format_series
from repro.benchdata.records import ConvNetFeatures
from repro.core.regression import ExtrapolationWarning
from repro.core.scalability import ScalingPoint, batch_scaling_curve
from repro.core.training import TrainingStepModel
from repro.experiments.common import GPU, SEED_EVAL, training_data
from repro.hardware.executor import SimulatedExecutor
from repro.hardware.memory import fits
from repro.hardware.roofline import zoo_profile
from repro.zoo.registry import get_entry

FIG9_MODELS: tuple[str, ...] = (
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet50",
    "squeezenet1_0",
    "mobilenet_v2",
    "efficientnet_b0",
    "regnet_x_8gf",
)

FIG9_IMAGE = 128
FIG9_BATCHES: tuple[int, ...] = (1, 4, 16, 64, 128, 256, 512, 1024, 2048,
                                 4096, 8192)
FIG9_REPS = 5


@dataclass(frozen=True)
class BatchScalingCurve:
    model: str
    points: tuple[ScalingPoint, ...]

    @property
    def predicted(self) -> list[float]:
        return [p.throughput for p in self.points]

    @property
    def measured(self) -> list[float | None]:
        return [p.measured for p in self.points]

    def saturation_batch(self, fraction: float = 0.8) -> int:
        """Smallest batch reaching ``fraction`` of the curve's asymptote.

        The asymptotic throughput of the linear model is
        ``1 / (per-image marginal time)``; models with a small fixed
        overhead relative to their marginal time saturate early (ResNet18,
        SqueezeNet in the paper).
        """
        asymptote = max(p.throughput for p in self.points)
        for p in sorted(self.points, key=lambda q: q.x):
            if p.throughput >= fraction * asymptote:
                return p.x
        return self.points[-1].x


@dataclass(frozen=True)
class Fig9Result:
    curves: dict[str, BatchScalingCurve]
    batches: tuple[int, ...]
    #: FIT004 extrapolation notes per model: batches whose design rows fall
    #: beyond the fitted feature ranges.  Figure 9 extrapolates on purpose
    #: ("simulating larger batch sizes"); the notes make that explicit.
    domain_notes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def render(self) -> str:
        sections = []
        for model, curve in self.curves.items():
            display = get_entry(model).display
            measured = [
                float("nan") if m is None else m for m in curve.measured
            ]
            sections.append(
                format_series(
                    list(self.batches),
                    {
                        "predicted_img_s": curve.predicted,
                        "measured_img_s": measured,
                    },
                    x_label="batch",
                    value_format=".0f",
                    title=(
                        f"Figure 9 — {display} (image {FIG9_IMAGE}, "
                        "nan = exceeds device memory)"
                    ),
                )
            )
        footer = [
            f"extrapolation [FIT004] {model}: {note}"
            for model, notes in sorted(self.domain_notes.items())
            for note in notes
        ]
        if footer:
            sections.append("\n".join(footer))
        return "\n\n".join(sections)


def run_fig9(
    models: tuple[str, ...] = FIG9_MODELS,
    batches: tuple[int, ...] = FIG9_BATCHES,
) -> Fig9Result:
    fit_data = training_data()
    executor = SimulatedExecutor(GPU, seed=SEED_EVAL)
    curves: dict[str, BatchScalingCurve] = {}
    domain_notes: dict[str, tuple[str, ...]] = {}
    for model in models:
        step_model = TrainingStepModel().fit(fit_data.excluding_model(model))
        profile = zoo_profile(model, FIG9_IMAGE)
        features = ConvNetFeatures.from_profile(profile)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", ExtrapolationWarning)
            predicted = batch_scaling_curve(step_model, features, batches)
        notes = tuple(
            str(w.message)
            for w in caught
            if issubclass(w.category, ExtrapolationWarning)
        )
        if notes:
            domain_notes[model] = notes
        points = []
        for point in predicted:
            measured = measured_std = None
            if fits(profile, point.per_device_batch, GPU, training=True):
                totals = np.array(
                    [
                        executor.measure_training_step(
                            profile, point.per_device_batch, rep=rep
                        ).total
                        for rep in range(FIG9_REPS)
                    ]
                )
                throughputs = point.per_device_batch / totals
                measured = float(throughputs.mean())
                measured_std = float(throughputs.std())
            points.append(
                ScalingPoint(
                    x=point.x,
                    devices=1,
                    per_device_batch=point.per_device_batch,
                    step_time=point.step_time,
                    throughput=point.throughput,
                    measured=measured,
                    measured_std=measured_std,
                )
            )
        curves[model] = BatchScalingCurve(model=model, points=tuple(points))
    return Fig9Result(
        curves=curves, batches=tuple(batches), domain_notes=domain_notes
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_fig9().render())
