"""Table 3 (multi-node columns) + Figure 7: distributed training prediction.

Same structure as the single-GPU experiment but over the multi-node
campaign (1–8 nodes × 4 GPUs).  The gradient-update phase uses the
multi-node form of Eq. 4 (c1·L + c2·W + c3·N); backward and update are also
fitted jointly inside the step model because the phases overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.forward import ForwardModel
from repro.core.loo import LeaveOneOutResult, leave_one_out
from repro.core.metrics import EvalMetrics
from repro.core.training import (
    BackwardModel,
    GradientUpdateModel,
    TrainingStepModel,
)
from repro.experiments.common import distributed_data
from repro.zoo.registry import get_entry


@dataclass(frozen=True)
class Table3DistributedResult:
    step: LeaveOneOutResult
    phases: dict[str, EvalMetrics]

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "model": get_entry(m).display,
                "r2": e.r2,
                "rmse_ms": e.rmse * 1e3,
                "nrmse": e.nrmse,
                "mape": e.mape,
            }
            for m, e in self.step.per_model.items()
        ]

    def render(self) -> str:
        table = format_table(
            self.rows(),
            [
                ("model", None),
                ("r2", ".3f"),
                ("rmse_ms", ".2f"),
                ("nrmse", ".2f"),
                ("mape", ".2f"),
            ],
            title="Table 3 — distributed training-step prediction (LOO)",
        )
        phase_rows = [
            {"phase": name, "r2": e.r2, "rmse_ms": e.rmse * 1e3,
             "nrmse": e.nrmse, "mape": e.mape}
            for name, e in self.phases.items()
        ]
        phases = format_table(
            phase_rows,
            [
                ("phase", None),
                ("r2", ".3f"),
                ("rmse_ms", ".2f"),
                ("nrmse", ".2f"),
                ("mape", ".2f"),
            ],
            title="Figure 7 — per-phase pooled accuracy (multi-node, LOO)",
        )
        return table + "\n\n" + phases


def run_table3_distributed() -> Table3DistributedResult:
    data = distributed_data()
    step = leave_one_out(
        data, lambda: TrainingStepModel(), lambda r: r.t_total
    )
    phases = {
        "forward": leave_one_out(
            data, lambda: ForwardModel(phase="fwd"), lambda r: r.t_fwd
        ).pooled,
        "backward": leave_one_out(
            data, lambda: BackwardModel(), lambda r: r.t_bwd
        ).pooled,
        "grad_update": leave_one_out(
            data,
            lambda: GradientUpdateModel(multi_node=True),
            lambda r: r.t_grad,
        ).pooled,
        "entire_step": step.pooled,
    }
    return Table3DistributedResult(step=step, phases=phases)


if __name__ == "__main__":  # pragma: no cover
    print(run_table3_distributed().render())
