"""Figure 8: throughput (images/s) vs number of nodes, per ConvNet.

Fixed 128×128 images and per-device batch 64 (weak scaling).  For every
model, a training-step model is fitted with that ConvNet held out, its
throughput curve is predicted for 1–8 nodes, and fresh held-out
measurements (with standard deviation across repetitions) provide the
ground-truth curve.  AlexNet's early diminishing return must be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_series
from repro.benchdata.records import ConvNetFeatures
from repro.core.scalability import ScalingPoint, node_scaling_curve, turning_point
from repro.core.training import TrainingStepModel
from repro.distributed.cluster import ClusterSpec
from repro.distributed.trainer import DistributedTrainer
from repro.experiments.common import (
    GPU,
    GPUS_PER_NODE,
    NODE_COUNTS,
    SEED_EVAL,
    distributed_data,
)
from repro.hardware.roofline import zoo_profile
from repro.zoo.registry import get_entry

#: The eight ConvNets of the paper's scaling figure.
FIG8_MODELS: tuple[str, ...] = (
    "alexnet",
    "vgg16",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "squeezenet1_0",
    "mobilenet_v2",
    "efficientnet_b0",
)

FIG8_IMAGE = 128
FIG8_BATCH = 64
FIG8_REPS = 5


@dataclass(frozen=True)
class ModelScalingCurve:
    model: str
    points: tuple[ScalingPoint, ...]

    @property
    def predicted(self) -> list[float]:
        return [p.throughput for p in self.points]

    @property
    def measured(self) -> list[float]:
        return [p.measured for p in self.points]

    @property
    def measured_std(self) -> list[float]:
        return [p.measured_std for p in self.points]

    def speedup(self) -> float:
        """Predicted throughput gain from the smallest to largest node count."""
        return self.points[-1].throughput / self.points[0].throughput


@dataclass(frozen=True)
class Fig8Result:
    curves: dict[str, ModelScalingCurve]
    node_counts: tuple[int, ...]

    def trend_agreement(self, model: str) -> float:
        """Pearson correlation between predicted and measured curves."""
        curve = self.curves[model]
        pred = np.array(curve.predicted)
        meas = np.array(curve.measured)
        if np.std(pred) == 0 or np.std(meas) == 0:
            return 0.0
        return float(np.corrcoef(pred, meas)[0, 1])

    def render(self) -> str:
        sections = []
        for model, curve in self.curves.items():
            display = get_entry(model).display
            sections.append(
                format_series(
                    list(self.node_counts),
                    {
                        "predicted_img_s": curve.predicted,
                        "measured_img_s": curve.measured,
                        "measured_std": curve.measured_std,
                    },
                    x_label="nodes",
                    value_format=".0f",
                    title=f"Figure 8 — {display} (image {FIG8_IMAGE}, "
                    f"batch {FIG8_BATCH}/device)",
                )
            )
        return "\n\n".join(sections)


def run_fig8(
    models: tuple[str, ...] = FIG8_MODELS,
    node_counts: tuple[int, ...] = NODE_COUNTS,
) -> Fig8Result:
    fit_data = distributed_data()
    curves: dict[str, ModelScalingCurve] = {}
    for model in models:
        step_model = TrainingStepModel().fit(fit_data.excluding_model(model))
        profile = zoo_profile(model, FIG8_IMAGE)
        features = ConvNetFeatures.from_profile(profile)
        predicted = node_scaling_curve(
            step_model, features, FIG8_BATCH, node_counts, GPUS_PER_NODE
        )
        points = []
        for point in predicted:
            cluster = ClusterSpec(
                nodes=point.x, gpus_per_node=GPUS_PER_NODE, device=GPU
            )
            trainer = DistributedTrainer(cluster, seed=SEED_EVAL)
            totals = np.array(
                [
                    trainer.measure_step(profile, FIG8_BATCH, rep=rep).total
                    for rep in range(FIG8_REPS)
                ]
            )
            throughputs = FIG8_BATCH * cluster.total_devices / totals
            points.append(
                ScalingPoint(
                    x=point.x,
                    devices=point.devices,
                    per_device_batch=point.per_device_batch,
                    step_time=point.step_time,
                    throughput=point.throughput,
                    measured=float(throughputs.mean()),
                    measured_std=float(throughputs.std()),
                )
            )
        curves[model] = ModelScalingCurve(model=model, points=tuple(points))
    return Fig8Result(curves=curves, node_counts=tuple(node_counts))


def alexnet_flattens_first(result: Fig8Result) -> bool:
    """The paper's headline observation: AlexNet shows the most prominent
    diminishing return of the predicted curves."""
    speedups = {m: c.speedup() for m, c in result.curves.items()}
    return min(speedups, key=speedups.get) == "alexnet"


def diminishing_return_nodes(result: Fig8Result, model: str) -> int:
    """Node count at which adding nodes stops paying off (predicted)."""
    return turning_point(list(result.curves[model].points)).x


if __name__ == "__main__":  # pragma: no cover
    print(run_fig8().render())
