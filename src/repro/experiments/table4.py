"""Table 4: qualitative comparison with related work.

A static capability matrix in the paper; here the ConvMeter row is also
*checked* against the repository — every claimed capability must map to an
implemented, exercised feature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.related_work import RELATED_WORK, convmeter_row, to_rows
from repro.analysis.tables import format_table


@dataclass(frozen=True)
class Table4Result:
    def rows(self) -> list[dict[str, object]]:
        return to_rows()

    def render(self) -> str:
        return format_table(
            self.rows(),
            [
                ("method", None),
                ("inference", None),
                ("training", None),
                ("unseen", None),
                ("blocks", None),
                ("multi-GPU", None),
                ("multi-node", None),
                ("modeling effort", None),
            ],
            title="Table 4 — comparison with related work",
        )

    def verify_convmeter_claims(self) -> list[str]:
        """Check each ConvMeter capability is backed by implemented code.

        Returns the list of claims that could NOT be verified (empty when
        all hold).
        """
        failures: list[str] = []
        row = convmeter_row()
        # Inference + unseen models + blocks: forward model and LOO exist.
        try:
            from repro.core import ForwardModel, blockwise_evaluation, leave_one_out  # noqa: F401
        except ImportError:
            failures.append("inference/unseen/block prediction")
        # Training: step model exists.
        try:
            from repro.core import TrainingStepModel  # noqa: F401
        except ImportError:
            failures.append("training prediction")
        # Multi-GPU / multi-node: distributed substrate exists.
        try:
            from repro.distributed import ClusterSpec, DistributedTrainer  # noqa: F401
        except ImportError:
            failures.append("multi-GPU / multi-node prediction")
        if not (row.predicts_inference and row.predicts_training
                and row.block_level and row.multi_node):
            failures.append("capability row is inconsistent with the paper")
        return failures


def run_table4() -> Table4Result:
    if RELATED_WORK[-1].name != "ConvMeter (ours)":
        raise RuntimeError("ConvMeter row must be last in the matrix")
    return Table4Result()


if __name__ == "__main__":  # pragma: no cover
    print(run_table4().render())
