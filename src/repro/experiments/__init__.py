"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(...)`` returning a structured result object with
a ``render()`` method that prints the same rows/series the paper reports.
The benchmarks under ``benchmarks/`` are thin wrappers that execute these
and assert the paper's qualitative shapes.
"""

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig6 import run_fig6
from repro.experiments.table3_single import run_table3_single
from repro.experiments.table3_distributed import run_table3_distributed
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.table4 import run_table4
from repro.experiments.strong_scaling import run_strong_scaling

__all__ = [
    "run_fig1",
    "run_fig2",
    "run_table1",
    "run_table2",
    "run_fig6",
    "run_table3_single",
    "run_table3_distributed",
    "run_fig8",
    "run_fig9",
    "run_table4",
    "run_strong_scaling",
]
