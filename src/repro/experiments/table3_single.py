"""Table 3 (single-GPU columns) + Figure 5: training-step prediction on one
A100.

Per-model leave-one-out accuracy of the entire training step, plus pooled
per-phase accuracy (forward / backward / gradient update / entire step) —
the four panels of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.forward import ForwardModel
from repro.core.loo import LeaveOneOutResult, leave_one_out
from repro.core.metrics import EvalMetrics
from repro.core.training import (
    BackwardModel,
    GradientUpdateModel,
    TrainingStepModel,
)
from repro.experiments.common import training_data
from repro.zoo.registry import get_entry


@dataclass(frozen=True)
class Table3SingleResult:
    step: LeaveOneOutResult
    phases: dict[str, EvalMetrics]  # fwd / bwd / grad / step (pooled, LOO)

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "model": get_entry(m).display,
                "r2": e.r2,
                "rmse_ms": e.rmse * 1e3,
                "nrmse": e.nrmse,
                "mape": e.mape,
            }
            for m, e in self.step.per_model.items()
        ]

    def render(self) -> str:
        table = format_table(
            self.rows(),
            [
                ("model", None),
                ("r2", ".3f"),
                ("rmse_ms", ".2f"),
                ("nrmse", ".2f"),
                ("mape", ".2f"),
            ],
            title="Table 3 — single-GPU training-step prediction (LOO)",
        )
        phase_rows = [
            {"phase": name, "r2": e.r2, "rmse_ms": e.rmse * 1e3,
             "nrmse": e.nrmse, "mape": e.mape}
            for name, e in self.phases.items()
        ]
        phases = format_table(
            phase_rows,
            [
                ("phase", None),
                ("r2", ".3f"),
                ("rmse_ms", ".2f"),
                ("nrmse", ".2f"),
                ("mape", ".2f"),
            ],
            title="Figure 5 — per-phase pooled accuracy (LOO)",
        )
        return table + "\n\n" + phases


def run_table3_single() -> Table3SingleResult:
    data = training_data()
    step = leave_one_out(
        data, lambda: TrainingStepModel(), lambda r: r.t_total
    )
    phases = {
        "forward": leave_one_out(
            data, lambda: ForwardModel(phase="fwd"), lambda r: r.t_fwd
        ).pooled,
        "backward": leave_one_out(
            data, lambda: BackwardModel(), lambda r: r.t_bwd
        ).pooled,
        "grad_update": leave_one_out(
            data,
            lambda: GradientUpdateModel(multi_node=False),
            lambda r: r.t_grad,
        ).pooled,
        "entire_step": step.pooled,
    }
    return Table3SingleResult(step=step, phases=phases)


if __name__ == "__main__":  # pragma: no cover
    print(run_table3_single().render())
