"""Figure 2: inference prediction from FLOPs vs Inputs vs Outputs vs all three.

"Combining all three metrics leads to the most accurate prediction" — each
variant is fitted and evaluated with the leave-one-out protocol on the GPU
inference campaign; the combined model must beat every single-metric one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.baselines.single_metric import SINGLE_METRIC_VARIANTS, single_metric_model
from repro.core.loo import leave_one_out
from repro.core.metrics import EvalMetrics
from repro.experiments.common import gpu_inference_data


@dataclass(frozen=True)
class Fig2Result:
    """Pooled LOO accuracy per metric variant."""

    variants: dict[str, EvalMetrics]

    @property
    def combined_wins(self) -> bool:
        """True when the combined model beats every single-metric variant on
        both MAPE and R² — the figure's headline claim."""
        combined = self.variants["combined"]
        singles = [v for k, v in self.variants.items() if k != "combined"]
        return all(
            combined.mape < s.mape and combined.r2 > s.r2 for s in singles
        )

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "variant": name,
                "r2": m.r2,
                "rmse_ms": m.rmse * 1e3,
                "nrmse": m.nrmse,
                "mape": m.mape,
            }
            for name, m in self.variants.items()
        ]

    def render(self) -> str:
        return format_table(
            self.rows(),
            [
                ("variant", None),
                ("r2", ".3f"),
                ("rmse_ms", ".2f"),
                ("nrmse", ".3f"),
                ("mape", ".3f"),
            ],
            title="Figure 2 — inference prediction per metric set (GPU, LOO)",
        )


def run_fig2() -> Fig2Result:
    data = gpu_inference_data()
    variants: dict[str, EvalMetrics] = {}
    for name in SINGLE_METRIC_VARIANTS:
        result = leave_one_out(
            data,
            model_factory=lambda name=name: single_metric_model(name),
            measured_of=lambda r: r.t_fwd,
        )
        variants[name] = result.pooled
    return Fig2Result(variants=variants)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig2().render())
