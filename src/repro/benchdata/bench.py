"""Campaign throughput benchmark payload (``BENCH_campaign.json``).

The perf-trajectory counterpart of ``BENCH_serve.json``: where the serve
bench tracks request latency, this payload tracks how fast the campaign
engine turns sweep points into records — points per second with the
clean-time grid cache off (the pre-triage baseline) and on (the shipped
default), the grid-cache hit rate that explains the difference, and the
serve QPS so one artifact carries the whole perf trajectory of a release.

Only wall-clock throughput comes from a real timer; the records a bench
campaign produces are bit-identical between the two configurations (the
grid cache memoises deterministic clean times, never the noise stream),
which is what lets the comparison claim a pure speedup.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping

#: Schema identifier stamped into every campaign bench payload.
CAMPAIGN_BENCH_SCHEMA = "repro/campaign-bench/v1"


def campaign_bench_payload(
    *,
    scenario: str,
    device: str,
    models: "tuple[str, ...] | list[str]",
    n_points: int,
    workers: int,
    seed: int,
    baseline_wall_seconds: float,
    optimized_wall_seconds: float,
    grid_cache_stats: Mapping[str, float],
    serve_qps: float,
    serve_queries: int,
    serve_p50_ms: float,
) -> dict[str, Any]:
    """Assemble a ``BENCH_campaign.json`` document.

    ``grid_cache_stats`` is a :meth:`repro.caching.CacheStats.to_dict`
    mapping from the optimized run's ``CLEAN_TIME_CACHE`` delta; the
    serve figures come from a :func:`repro.serve.bench.run_bench`
    payload of the same session.
    """
    baseline_pps = (
        n_points / baseline_wall_seconds if baseline_wall_seconds > 0 else 0.0
    )
    optimized_pps = (
        n_points / optimized_wall_seconds
        if optimized_wall_seconds > 0
        else 0.0
    )
    return {
        "schema": CAMPAIGN_BENCH_SCHEMA,
        "config": {
            "scenario": scenario,
            "device": device,
            "models": list(models),
            "workers": workers,
            "seed": seed,
        },
        "n_points": n_points,
        "baseline": {
            "wall_seconds": baseline_wall_seconds,
            "points_per_second": baseline_pps,
        },
        "optimized": {
            "wall_seconds": optimized_wall_seconds,
            "points_per_second": optimized_pps,
        },
        "speedup": (
            optimized_pps / baseline_pps if baseline_pps > 0 else 0.0
        ),
        "grid_cache": dict(grid_cache_stats),
        "serve": {
            "qps": serve_qps,
            "queries": serve_queries,
            "p50_ms": serve_p50_ms,
        },
    }


def validate_campaign_bench_payload(payload: Any) -> list[str]:
    """Schema check of a ``BENCH_campaign.json`` document.

    Returns a list of problems (empty = valid).  Beyond key/type shape,
    every rate and count is checked for sanity: NaN or negative
    points-per-second, hit rates outside ``[0, 1]``, and non-positive
    ``n_points``/``workers`` all reject the payload — a bench that
    produces them measured nothing.
    """
    problems: list[str] = []

    def need(obj: Any, key: str, kind: type | tuple, where: str) -> Any:
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if not isinstance(value, kind) or isinstance(value, bool):
            problems.append(
                f"{where}.{key}: expected {kind}, got {type(value).__name__}"
            )
            return None
        return value

    def need_rate(
        obj: Any, key: str, where: str, upper: float | None = None
    ) -> None:
        value = need(obj, key, (int, float), where)
        if value is None:
            return
        if math.isnan(value) or math.isinf(value):
            problems.append(f"{where}.{key}: must be finite, got {value!r}")
        elif value < 0:
            problems.append(
                f"{where}.{key}: must be non-negative, got {value!r}"
            )
        elif upper is not None and value > upper:
            problems.append(
                f"{where}.{key}: must be <= {upper}, got {value!r}"
            )

    if need(payload, "schema", str, "$") != CAMPAIGN_BENCH_SCHEMA:
        problems.append(f"$.schema is not {CAMPAIGN_BENCH_SCHEMA!r}")
    config = need(payload, "config", dict, "$")
    if config is not None:
        for key in ("scenario", "device"):
            need(config, key, str, "$.config")
        need(config, "models", list, "$.config")
        need(config, "seed", int, "$.config")
        workers = need(config, "workers", int, "$.config")
        if workers is not None and workers < 1:
            problems.append(
                f"$.config.workers: must be >= 1, got {workers!r}"
            )
    n_points = need(payload, "n_points", int, "$")
    if n_points is not None and n_points < 1:
        problems.append(f"$.n_points: must be >= 1, got {n_points!r}")
    for section in ("baseline", "optimized"):
        block = need(payload, section, dict, "$")
        if block is not None:
            need_rate(block, "wall_seconds", f"$.{section}")
            need_rate(block, "points_per_second", f"$.{section}")
    need_rate(payload, "speedup", "$")
    cache = need(payload, "grid_cache", dict, "$")
    if cache is not None:
        for key in ("hits", "misses", "evictions", "lookups"):
            need_rate(cache, key, "$.grid_cache")
        need_rate(cache, "hit_rate", "$.grid_cache", upper=1.0)
    serve = need(payload, "serve", dict, "$")
    if serve is not None:
        need_rate(serve, "qps", "$.serve")
        need_rate(serve, "p50_ms", "$.serve")
        queries = need(serve, "queries", int, "$.serve")
        if queries is not None and queries < 0:
            problems.append(
                f"$.serve.queries: must be >= 0, got {queries!r}"
            )
    return problems


def write_campaign_bench(payload: dict[str, Any], path: str | Path) -> None:
    """Persist a campaign bench payload (schema-validated first)."""
    problems = validate_campaign_bench_payload(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid campaign bench payload: "
            + "; ".join(problems)
        )
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


__all__ = [
    "CAMPAIGN_BENCH_SCHEMA",
    "campaign_bench_payload",
    "validate_campaign_bench_payload",
    "write_campaign_bench",
]
