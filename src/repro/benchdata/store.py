"""On-disk campaign record store: append-only JSONL plus a manifest.

Layout of a store directory::

    manifest.json    # spec fingerprint + status; written once, updated last
    records.jsonl    # one line per completed sweep point, appended live

Each JSONL line is ``{"key": <point key>, "records": [<record dicts>]}``.
Gated points (out of memory, over the runtime budget) are logged with an
empty record list, so a resumed run restores the *decision*, not just the
measurements, and never re-profiles a configuration it already rejected.

A truncated trailing line — the signature of a killed process — is ignored
on load; that point is simply re-measured.  Because every measurement is
seeded by point identity (:func:`repro.hardware.noise.point_seed`), an
interrupted-then-resumed campaign is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, IO

from repro.benchdata.records import TimingRecord

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids cycle
    from repro.benchdata.engine import CampaignSpec, CampaignStats

_MANIFEST = "manifest.json"
_RECORDS = "records.jsonl"
_VERSION = 1


class StoreMismatch(ValueError):
    """The store on disk was written by a different campaign spec."""


class CampaignStore:
    """Resumable record log for one campaign."""

    def __init__(self, directory: str | Path, spec: "CampaignSpec") -> None:
        self.directory = Path(directory)
        self.spec = spec
        self._handle: IO[str] | None = None

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        spec: "CampaignSpec",
        resume: bool = False,
    ) -> "CampaignStore":
        """Create a fresh store, or re-open an existing one for resume.

        Opening an existing store without ``resume`` raises, so a stale
        directory is never silently mixed into a new campaign; resuming a
        store written by a different spec raises :class:`StoreMismatch`.
        """
        store = cls(directory, spec)
        manifest_path = store.directory / _MANIFEST
        if manifest_path.exists():
            if not resume:
                raise FileExistsError(
                    f"campaign store {store.directory} already exists; "
                    "pass resume=True (CLI: --resume) or remove it"
                )
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("fingerprint") != spec.fingerprint():
                raise StoreMismatch(
                    f"store {store.directory} was written by a different "
                    "campaign spec; refusing to mix record streams"
                )
        else:
            store.directory.mkdir(parents=True, exist_ok=True)
            manifest_path.write_text(
                json.dumps(
                    {
                        "version": _VERSION,
                        "fingerprint": spec.fingerprint(),
                        "spec": spec.manifest(),
                        "complete": False,
                    },
                    indent=2,
                )
            )
        return store

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- record log --------------------------------------------------------

    @property
    def records_path(self) -> Path:
        return self.directory / _RECORDS

    def restored_points(self) -> dict[str, list[TimingRecord]]:
        """Completed points already on disk, keyed by sweep-point key."""
        done: dict[str, list[TimingRecord]] = {}
        if not self.records_path.exists():
            return done
        with self.records_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    records = [
                        TimingRecord.from_dict(d) for d in entry["records"]
                    ]
                except (ValueError, KeyError):
                    # Truncated/corrupt tail of an interrupted run: drop the
                    # line; the engine re-measures that point identically.
                    continue
                done[entry["key"]] = records
        return done

    def append(
        self, key: str, records: list[TimingRecord], status: str = ""
    ) -> None:
        """Log one completed point (empty ``records`` = gated out).

        ``status`` marks *why* a point has no records — ``"oom"`` for
        memory-gated points (the edge-backend frontier perf4sight maps) or
        ``"budget"`` for runtime-budget gating.  It is omitted for measured
        points, so pre-status stores remain byte-identical, and it is
        deterministic: gating depends only on ``(spec, point)``.
        """
        if self._handle is None:
            self._handle = self.records_path.open("a")
        entry: dict = {"key": key, "records": [r.to_dict() for r in records]}
        if status:
            entry["status"] = status
        line = json.dumps(entry)
        self._handle.write(line + "\n")
        self._handle.flush()

    def finalize(self, stats: "CampaignStats") -> None:
        """Mark the campaign complete and persist its throughput counters."""
        self.close()
        manifest_path = self.directory / _MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["complete"] = True
        manifest["stats"] = stats.to_dict()
        manifest_path.write_text(json.dumps(manifest, indent=2))
