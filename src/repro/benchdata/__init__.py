"""Measurement campaign: the benchmark sweeps that tune ConvMeter.

Replicates the paper's data collection (Section 4, "Benchmarks"): batch
sizes from 1 to 2048 and image sizes from 32 to 224 across the model zoo,
"as long as the available memory on the target system allows", for
inference, single-device training, and multi-node distributed training.
"""

from repro.benchdata.records import (
    ConvNetFeatures,
    Dataset,
    TimingRecord,
    aggregate_reps,
)
from repro.benchdata.bench import (
    CAMPAIGN_BENCH_SCHEMA,
    campaign_bench_payload,
    validate_campaign_bench_payload,
    write_campaign_bench,
)
from repro.benchdata.cost import CampaignCost, campaign_cost
from repro.benchdata.engine import (
    VERIFY_MODES,
    CampaignResult,
    CampaignSpec,
    CampaignStats,
    SweepPoint,
    enumerate_points,
    point_counters,
    run_campaign,
    trace_campaign,
    verify_campaign_graphs,
)
from repro.benchdata.store import CampaignStore, StoreMismatch
from repro.benchdata.campaign import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_IMAGE_SIZES,
    DEFAULT_MODELS,
    block_campaign,
    distributed_campaign,
    inference_campaign,
    training_campaign,
)

__all__ = [
    "CAMPAIGN_BENCH_SCHEMA",
    "campaign_bench_payload",
    "validate_campaign_bench_payload",
    "write_campaign_bench",
    "ConvNetFeatures",
    "TimingRecord",
    "Dataset",
    "aggregate_reps",
    "CampaignCost",
    "campaign_cost",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "CampaignStore",
    "StoreMismatch",
    "SweepPoint",
    "VERIFY_MODES",
    "enumerate_points",
    "point_counters",
    "run_campaign",
    "trace_campaign",
    "verify_campaign_graphs",
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_IMAGE_SIZES",
    "DEFAULT_MODELS",
    "inference_campaign",
    "training_campaign",
    "distributed_campaign",
    "block_campaign",
]
