"""Campaign execution engine: parallel, cached, resumable sweeps.

The paper's measurement campaign is a few thousand independent
``(model, batch, image_size)`` points per scenario.  This module turns that
sweep into an explicit point list and executes it through one engine:

* **Enumeration** — :func:`enumerate_points` expands a
  :class:`CampaignSpec` into a deterministic, ordered list of
  :class:`SweepPoint` s.  The order is part of the contract: the assembled
  dataset always follows enumeration order, never completion order.
* **Execution** — :func:`run_campaign` measures every point either in
  process (``workers <= 1``) or fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are keyed by
  point index, so parallel runs are byte-identical to serial ones; all
  measurement noise is seeded from the point identity via
  :func:`repro.hardware.noise.point_seed`, never from call order.
* **Memoisation** — graph profiles are built once per ``(model, image)``
  per process through the bounded caches here and in
  :mod:`repro.hardware.roofline`; per-point cache deltas are aggregated
  across workers so the reported hit rate covers the whole campaign.
* **Resume** — with a :class:`repro.benchdata.store.CampaignStore`
  attached, each point's records (including the empty record lists of
  memory-gated points) are appended to a JSONL log as they complete;
  rerunning skips everything already on disk and appends only the rest.
* **Verification** — before measuring, :func:`run_campaign` runs the graph
  IR verifier (:mod:`repro.analysis.verify`) over every unique graph the
  sweep will touch.  ``verify="strict"`` refuses to measure a graph with
  ERROR diagnostics; the default ``"warn"`` measures anyway but emits a
  warning and records the error count in :class:`CampaignStats`.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.caching import CacheStats, LRUCache
from repro.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.distributed.cluster import ClusterSpec
from repro.distributed.trainer import DistributedTrainer
from repro.hardware.device import DeviceSpec
from repro.hardware.executor import (
    SimulatedExecutor,
    _BWD_BYTES_FACTOR,
    _BWD_FLOPS_OTHER,
    _BWD_FLOPS_PARAM,
    _OPT_BYTES_PER_PARAM,
    _OPT_FLOPS_PER_PARAM,
)
from repro.hardware.memory import fits
from repro.hardware.roofline import (
    PROFILE_CACHE,
    CostProfile,
    profile_graph,
    zoo_profile,
)
from repro.trace.tracer import merge_counters
from repro.zoo.blocks import BLOCK_CATALOGUE, build_block
from repro.zoo.registry import get_entry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store uses spec)
    from repro.benchdata.store import CampaignStore
    from repro.trace.tracer import Tracer

SCENARIOS = ("inference", "training", "distributed", "blocks")

#: Bounded cache of Table 2 block profiles, keyed ``(block, image_size)``.
BLOCK_PROFILE_CACHE: LRUCache[tuple[str, int], CostProfile] = LRUCache(
    maxsize=256
)


def block_profile(block_name: str, image_size: int) -> CostProfile:
    """Cached cost profile of a Table 2 block at a given parent image size."""

    def build() -> CostProfile:
        for spec in BLOCK_CATALOGUE:
            if spec.name == block_name:
                return profile_graph(build_block(spec, image_size))
        raise KeyError(f"unknown block {block_name!r}")

    return BLOCK_PROFILE_CACHE.get_or_compute((block_name, image_size), build)


def engine_cache_stats() -> CacheStats:
    """Combined counters of the profile caches the engine draws from.

    Deliberately excludes :data:`CLEAN_TIME_CACHE`: campaign stats have
    always reported *profile*-cache behaviour, and the perf-trajectory
    benchmark compares runs with grid caching on and off against the same
    counter definition.
    """
    return PROFILE_CACHE.stats() + BLOCK_PROFILE_CACHE.stats()


#: Bounded cache of clean-time grids, keyed by everything the noise-free
#: components depend on: device, execution backend, scenario (training adds
#: phases), graph transform, model identity, and the swept batch sizes.
#: One entry holds the whole batch sweep of a ``(model, image_size)`` pair,
#: computed from a single batched roofline evaluation per phase — so a
#: campaign pays the per-layer arithmetic once per model, not once per
#: point.
CLEAN_TIME_CACHE: LRUCache[
    tuple[str, str, str, str, str, int, tuple[int, ...]],
    dict[int, tuple[float, ...]],
] = LRUCache(maxsize=512)


def _spec_backend(spec: CampaignSpec):
    """The spec's :class:`ExecutionBackend`, or ``None`` for the default.

    ``None`` (rather than an explicit :class:`RooflineBackend`) keeps the
    default construction path identical to the pre-backend engine; every
    consumer treats ``backend=None`` as the roofline policy.
    """
    if not spec.backend:
        return None
    from repro.hardware.backend import get_backend

    return get_backend(spec.backend, spec.device)


def _clean_time_grid(
    spec: CampaignSpec, point: SweepPoint, profile: CostProfile
) -> dict[int, tuple[float, ...]]:
    """Cached clean-time components for every batch in the spec's sweep."""
    key = (
        spec.device.name,
        spec.backend,
        spec.scenario,
        spec.transform,
        point.model,
        point.image_size,
        spec.batch_sizes,
    )

    def build() -> dict[int, tuple[float, ...]]:
        executor = SimulatedExecutor(
            spec.device, seed=spec.seed, backend=_spec_backend(spec)
        )
        return executor.clean_time_grids(
            profile,
            spec.batch_sizes,
            training=spec.scenario == "training",
        )

    return CLEAN_TIME_CACHE.get_or_compute(key, build)


@dataclass(frozen=True)
class SweepPoint:
    """One independently measurable configuration of a campaign."""

    scenario: str
    model: str
    image_size: int
    batch: int
    nodes: int = 1
    rep: int = 0

    @property
    def key(self) -> str:
        """Stable identity used for record-store resume bookkeeping."""
        return (
            f"{self.scenario}:{self.model}:{self.image_size}"
            f":{self.batch}:{self.nodes}:{self.rep}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's record set, and nothing else.

    Two specs with equal :meth:`fingerprint` produce byte-identical record
    streams — the invariant the store checks before resuming.
    """

    scenario: str
    models: tuple[str, ...]
    device: DeviceSpec
    batch_sizes: tuple[int, ...]
    image_sizes: tuple[int, ...]
    seed: int = 0
    reps: int = 1
    max_seconds: float | None = None
    node_counts: tuple[int, ...] = (1,)
    gpus_per_node: int = 4
    #: Graph transform applied before profiling: ``""`` (raw graphs, the
    #: default), ``"inference"`` (the default fusion pipeline), or a
    #: comma-separated list of registered pass names — the vocabulary of
    #: :func:`repro.graph.passes.resolve_transform`.  Part of the
    #: fingerprint, so fused and raw stores never cross-resume.
    transform: str = ""
    #: Execution backend name from
    #: :data:`repro.hardware.backend.BACKEND_REGISTRY`; ``""`` (the
    #: default) is the historical roofline simulator.  Part of the
    #: fingerprint when set, so e.g. edge and datacenter stores never
    #: cross-resume.
    backend: str = ""

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; one of {SCENARIOS}"
            )
        if self.transform:
            if self.scenario == "blocks":
                raise ValueError(
                    "transform is not supported for the blocks scenario"
                )
            from repro.graph.passes import resolve_transform

            resolve_transform(self.transform)  # KeyError on unknown passes
        if self.backend:
            from repro.hardware.backend import get_backend

            # Builds once to validate the name *and* the device pairing
            # (e.g. fp16 on a device without fp16 support) at spec
            # construction, not mid-campaign.
            get_backend(self.backend, self.device)

    def manifest(self) -> dict:
        """JSON-serialisable description, written to the store manifest."""
        m = {
            "scenario": self.scenario,
            "models": list(self.models),
            "device": self.device.name,
            "batch_sizes": list(self.batch_sizes),
            "image_sizes": list(self.image_sizes),
            "seed": self.seed,
            "reps": self.reps,
            "max_seconds": self.max_seconds,
            "node_counts": list(self.node_counts),
            "gpus_per_node": self.gpus_per_node,
        }
        # Only serialised when set, so every pre-transform (and
        # pre-backend) store manifest and its fingerprint remain valid for
        # resume.
        if self.transform:
            m["transform"] = self.transform
        if self.backend:
            m["backend"] = self.backend
        return m

    def fingerprint(self) -> str:
        blob = json.dumps(self.manifest(), sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _valid_images(model: str, image_sizes: tuple[int, ...]) -> list[int]:
    min_size = get_entry(model).min_image_size
    return [s for s in image_sizes if s >= min_size]


def enumerate_points(spec: CampaignSpec) -> list[SweepPoint]:
    """Expand a spec into its ordered sweep-point list.

    Only architecture constraints (minimum image size) are applied here;
    memory and runtime-budget gating need a built profile and therefore
    happen inside :func:`execute_point`, where the build is cached.
    """
    points: list[SweepPoint] = []
    if spec.scenario == "blocks":
        catalogue = (
            [b for b in BLOCK_CATALOGUE if b.name in spec.models]
            if spec.models
            else list(BLOCK_CATALOGUE)
        )
        for block in catalogue:
            min_size = get_entry(block.model).min_image_size
            for image in spec.image_sizes:
                if image < min_size:
                    continue
                for batch in spec.batch_sizes:
                    for rep in range(spec.reps):
                        points.append(
                            SweepPoint(
                                spec.scenario, block.name, image, batch,
                                rep=rep,
                            )
                        )
        return points

    node_counts = spec.node_counts if spec.scenario == "distributed" else (1,)
    for nodes in node_counts:
        for model in spec.models:
            for image in _valid_images(model, spec.image_sizes):
                for batch in spec.batch_sizes:
                    for rep in range(spec.reps):
                        points.append(
                            SweepPoint(
                                spec.scenario, model, image, batch,
                                nodes=nodes, rep=rep,
                            )
                        )
    return points


# -- verify-before-measure ---------------------------------------------------

VERIFY_MODES = ("off", "warn", "strict")

#: Cached verification verdicts, keyed like the profile caches so a sweep
#: verifies each unique graph once per process, not once per point.  The
#: key carries the transform string and the IR007 gate, so raw and fused
#: sweeps of the same graph cache separate verdicts.
VERIFY_CACHE: LRUCache[
    tuple[str, str, int, str, bool, int], tuple[Diagnostic, ...]
] = LRUCache(maxsize=512)


def _verify_graph_cached(
    kind: str,
    name: str,
    image_size: int,
    transform: str = "",
    advise_fusion: bool = False,
    edge_batch: int = 1,
) -> tuple[Diagnostic, ...]:
    def build() -> tuple[Diagnostic, ...]:
        # Imported lazily: repro.analysis pulls in repro.core, which imports
        # this package's records module — a cycle at module-import time.
        from repro.analysis.verify import verify_graph, verify_transform

        if kind == "block":
            for block in BLOCK_CATALOGUE:
                if block.name == name:
                    graph = build_block(block, image_size)
                    break
            else:
                raise KeyError(f"unknown block {name!r}")
        else:
            from repro.zoo import build_model

            graph = build_model(name, image_size)
        # IR007 (fold your BatchNorms) is only actionable advice for raw
        # inference sweeps; training needs live BatchNorm and a fused sweep
        # already took the advice.
        ignore = () if advise_fusion else ("IR007",)
        found = list(
            verify_graph(graph, ignore=ignore, edge_batch=edge_batch)
        )
        if transform:
            from repro.graph.passes import resolve_transform

            pipeline = resolve_transform(transform)
            assert pipeline is not None
            transformed = pipeline.run(graph).graph
            # Both halves of the contract: the rewritten graph is itself a
            # well-formed IR, and the rewrite preserved the semantics.
            # IR009 is skipped on the fused half — one edge-memory advisory
            # per graph is enough.
            found.extend(
                verify_graph(transformed, ignore=("IR007", "IR009"))
            )
            found.extend(verify_transform(graph, transformed))
        return tuple(sort_diagnostics(found))

    return VERIFY_CACHE.get_or_compute(
        (kind, name, image_size, transform, advise_fusion, edge_batch), build
    )


def verify_campaign_graphs(spec: CampaignSpec) -> list[Diagnostic]:
    """Verify every unique graph a campaign will measure.

    The verdicts are cached per ``(model, image_size)``, mirroring the
    profile caches, so the verification cost is one graph build per unique
    configuration — negligible next to the sweep itself.  For transformed
    campaigns each graph is verified twice — raw and after the pipeline —
    plus the IR008 preservation check across the pair.
    """
    kind = "block" if spec.scenario == "blocks" else "model"
    advise_fusion = spec.scenario == "inference" and not spec.transform
    unique: dict[tuple[str, int], None] = {}
    for point in enumerate_points(spec):
        unique.setdefault((point.model, point.image_size), None)
    edge_batch = min(spec.batch_sizes)
    found: list[Diagnostic] = []
    for name, image_size in unique:
        found.extend(
            _verify_graph_cached(
                kind, name, image_size, spec.transform, advise_fusion,
                edge_batch=edge_batch,
            )
        )
    return sort_diagnostics(found)


def _run_verification(spec: CampaignSpec, verify: str) -> int:
    """Apply the requested verify mode; returns the ERROR count."""
    if verify not in VERIFY_MODES:
        raise ValueError(
            f"unknown verify mode {verify!r}; one of {VERIFY_MODES}"
        )
    if verify == "off":
        return 0
    diags = verify_campaign_graphs(spec)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    if errors:
        if verify == "strict":
            from repro.analysis.verify import GraphVerificationError

            raise GraphVerificationError(diags)
        warnings.warn(
            f"campaign {spec.scenario!r} graphs failed verification with "
            f"{len(errors)} ERROR diagnostic(s); measuring anyway because "
            f"verify='warn'. First: {errors[0].render()}",
            RuntimeWarning,
            stacklevel=3,
        )
    return len(errors)


def _point_profile(spec: CampaignSpec, point: SweepPoint) -> CostProfile:
    if spec.scenario == "blocks":
        return block_profile(point.model, point.image_size)
    if spec.transform:
        from repro.graph.passes import resolve_transform

        # Resolving is a cheap registry lookup; the expensive build+rewrite
        # is memoised in PROFILE_CACHE under the pipeline fingerprint, so
        # workers and resumed runs share the same cached profiles as a
        # serial run.
        return zoo_profile(
            point.model, point.image_size, resolve_transform(spec.transform)
        )
    return zoo_profile(point.model, point.image_size)


def _gated(
    spec: CampaignSpec,
    point: SweepPoint,
    profile: CostProfile,
    clean: tuple[float, ...] | None = None,
) -> str:
    """Why a point is excluded: ``"oom"`` (does not fit device memory),
    ``"budget"`` (over the runtime budget), or ``""`` (measurable).

    Gating depends only on ``(spec, point)``, never on whether the point is
    being measured or traced — which is what makes the per-point OOM
    markers in the store deterministic across workers and resume splits.
    ``clean`` supplies the point's grid-cached clean-time components
    (forward first, backward second for training), which are bit-identical
    to the per-point computation they replace."""
    training = spec.scenario in ("training", "distributed")
    backend = _spec_backend(spec)
    if not fits(
        profile, point.batch, spec.device, training=training, backend=backend
    ):
        return "oom"
    if spec.max_seconds is None or spec.scenario == "distributed":
        return ""
    if clean is not None:
        estimate = clean[0]
        if spec.scenario == "training":
            estimate += clean[1]
        return "budget" if estimate > spec.max_seconds else ""
    executor = SimulatedExecutor(spec.device, seed=spec.seed, backend=backend)
    estimate = executor.forward_time_clean(profile, point.batch)
    if spec.scenario == "training":
        estimate += executor.backward_time_clean(profile, point.batch)
    return "budget" if estimate > spec.max_seconds else ""


def point_counters(
    spec: CampaignSpec, point: SweepPoint, profile: CostProfile
) -> dict[str, float]:
    """Analytic work counters of one measured point (per-rank quantities).

    Always on — a handful of vectorised sums per point, independent of
    tracing — so campaign stats and store manifests are identical whether
    or not a trace was requested.  Mirrors the accounting the span layer
    records: forward work for inference, plus backward/optimizer work for
    training scenarios, plus all-reduce volume when more than one rank
    participates.
    """
    b = float(point.batch)
    act = float(profile.act_bytes.sum())
    weights = float(profile.weight_bytes.sum())
    flops = float(profile.flops.sum()) * b
    nbytes = act * b + weights
    if spec.scenario in ("training", "distributed"):
        factor = np.where(
            profile.has_params, _BWD_FLOPS_PARAM, _BWD_FLOPS_OTHER
        )
        flops += float((profile.flops * factor).sum()) * b
        nbytes += act * (b * _BWD_BYTES_FACTOR) + weights
        params = float(profile.param_counts.sum())
        flops += _OPT_FLOPS_PER_PARAM * params
        nbytes += _OPT_BYTES_PER_PARAM * params
    counters = {"flops": flops, "bytes": nbytes}
    if spec.scenario == "distributed":
        ranks = point.nodes * spec.gpus_per_node
        backend = _spec_backend(spec)
        grad_elem_bytes = 4.0 if backend is None else backend.float_bytes
        grad_bytes = grad_elem_bytes * float(
            profile.param_counts[profile.has_params].sum()
        )
        if ranks > 1 and grad_bytes > 0.0:
            counters["allreduce_bytes"] = grad_bytes
    return counters


def _measure_point(
    spec: CampaignSpec,
    point: SweepPoint,
    tracer: "Tracer | None" = None,
    grid_cache: bool = True,
) -> tuple[list[TimingRecord], dict[str, float], str]:
    """Measure one sweep point: ``(records, counters, gate_status)``.

    Gated points return ``([], {}, "oom" | "budget")`` — a graceful
    per-point record of *why* nothing was measured, which the store
    persists so e.g. an edge-backend campaign maps its OOM frontier
    instead of crashing.  With a ``tracer``, the measurement is
    additionally wrapped in a ``model`` span with the per-phase/per-layer
    spans the executor and trainer emit; the recorded values are identical
    either way.

    ``grid_cache`` (the default) sources the deterministic clean-time
    components from :data:`CLEAN_TIME_CACHE` — one batched roofline
    evaluation per ``(model, image_size)`` instead of one per point — and
    skips the redundant memory re-check (gating already proved the fit).
    Records are bit-identical either way; ``grid_cache=False`` exists so
    the perf-trajectory benchmark can measure the ungridded baseline and
    the equivalence suite can prove the identity.
    """
    profile = _point_profile(spec, point)
    clean: tuple[float, ...] | None = None
    if grid_cache and spec.scenario != "distributed":
        clean = _clean_time_grid(spec, point, profile).get(point.batch)
    gate = _gated(spec, point, profile, clean)
    if gate:
        return [], {}, gate
    backend = _spec_backend(spec)
    features = ConvNetFeatures.from_profile(profile)
    tracing = tracer is not None and tracer.enabled
    if tracing:
        tracer.begin(
            point.key,
            category="model",
            attrs={
                "model": point.model,
                "image_size": point.image_size,
                "batch": point.batch,
                "nodes": point.nodes,
                "rep": point.rep,
            },
        )

    if spec.scenario in ("inference", "blocks"):
        executor = SimulatedExecutor(
            spec.device, seed=spec.seed, backend=backend
        )
        t = executor.measure_inference(
            profile,
            point.batch,
            rep=point.rep,
            tracer=tracer,
            enforce_memory=clean is None,
            clean_time=None if clean is None else clean[0],
        )
        records = [
            TimingRecord(
                model=point.model,
                device=spec.device.name,
                image_size=point.image_size,
                batch=point.batch,
                nodes=1,
                devices=1,
                scenario="inference",
                features=features,
                t_fwd=t,
                rep=point.rep,
                backend=spec.backend,
            )
        ]
    elif spec.scenario == "training":
        executor = SimulatedExecutor(
            spec.device, seed=spec.seed, backend=backend
        )
        phases = executor.measure_training_step(
            profile,
            point.batch,
            rep=point.rep,
            tracer=tracer,
            enforce_memory=clean is None,
            clean_times=None if clean is None else clean,
        )
        records = [
            TimingRecord(
                model=point.model,
                device=spec.device.name,
                image_size=point.image_size,
                batch=point.batch,
                nodes=1,
                devices=1,
                scenario="training",
                features=features,
                t_fwd=phases.forward,
                t_bwd=phases.backward,
                t_grad=phases.grad_update,
                rep=point.rep,
                backend=spec.backend,
            )
        ]
    else:
        cluster = ClusterSpec(
            nodes=point.nodes,
            gpus_per_node=spec.gpus_per_node,
            device=spec.device,
        )
        trainer = DistributedTrainer(cluster, seed=spec.seed, backend=backend)
        phases = trainer.measure_step(
            profile, point.batch, rep=point.rep, tracer=tracer
        )
        records = [
            TimingRecord(
                model=point.model,
                device=spec.device.name,
                image_size=point.image_size,
                batch=point.batch,
                nodes=point.nodes,
                devices=cluster.total_devices,
                scenario="distributed",
                features=features,
                t_fwd=phases.forward,
                t_bwd=phases.backward,
                t_grad=phases.grad_update,
                rep=point.rep,
                backend=spec.backend,
            )
        ]

    if tracing:
        tracer.end()
    return records, point_counters(spec, point, profile), ""


def execute_point(spec: CampaignSpec, point: SweepPoint) -> list[TimingRecord]:
    """Measure one sweep point; empty list when gated out (OOM / budget).

    Pure in the campaign sense: output depends only on ``(spec, point)``,
    so any execution order, process placement, or resume split yields the
    same records.
    """
    return _measure_point(spec, point)[0]


def trace_campaign(
    spec: CampaignSpec,
    tracer: "Tracer",
    points: list[SweepPoint] | None = None,
    grid_cache: bool = True,
) -> None:
    """Re-execute a campaign's sweep serially under ``tracer``.

    Tracing is a post-pass over the enumerated point list, deliberately
    independent of how the measuring run was parallelised, resumed, or
    cached: every duration re-derives from point-identity noise seeding
    (:func:`repro.hardware.noise.point_seed`), so the emitted trace is
    byte-identical to the one a fresh serial run would produce.  Gated
    points emit no spans, mirroring their empty record lists.
    """
    if points is None:
        points = enumerate_points(spec)
    tracer.begin(
        f"campaign:{spec.scenario}",
        category="campaign",
        attrs={"device": spec.device.name, "n_points": len(points)},
    )
    # Per-point measurement is the tracing contract: every span re-derives
    # from point-identity noise seeding, and batching across points would
    # interleave span streams.  The batchable clean components are already
    # amortised through CLEAN_TIME_CACHE.
    for point in points:
        _measure_point(  # repro-lint: disable=PERF006
            spec, point, tracer=tracer, grid_cache=grid_cache
        )
    tracer.end()


# -- process-pool plumbing ---------------------------------------------------

_WORKER_SPEC: CampaignSpec | None = None
_WORKER_GRID_CACHE: bool = True


def _init_worker(spec: CampaignSpec, grid_cache: bool = True) -> None:
    global _WORKER_SPEC, _WORKER_GRID_CACHE
    _WORKER_SPEC = spec
    _WORKER_GRID_CACHE = grid_cache


def _run_point_task(
    task: tuple[int, SweepPoint]
) -> tuple[int, str, list[TimingRecord], dict[str, float], CacheStats, str]:
    """Executed inside a pool worker; returns per-point counter and cache
    deltas so the parent can aggregate campaign-wide totals across
    processes."""
    index, point = task
    assert _WORKER_SPEC is not None, "worker pool not initialised"
    before = engine_cache_stats()
    records, counters, gate = _measure_point(
        _WORKER_SPEC, point, grid_cache=_WORKER_GRID_CACHE
    )
    return (
        index, point.key, records, counters,
        engine_cache_stats() - before, gate,
    )


# -- driver ------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignStats:
    """Observability counters of one :func:`run_campaign` invocation."""

    scenario: str
    workers: int
    #: Enumerated sweep points (measured + gated + restored).
    n_points: int
    #: Points skipped because the record store already held them.
    n_restored: int
    #: Points actually measured by this run.
    n_executed: int
    #: Records in the assembled dataset.
    n_records: int
    elapsed_seconds: float
    cache: CacheStats = field(default_factory=CacheStats)
    #: ERROR diagnostics from pre-measurement graph verification (always 0
    #: under ``verify="strict"``, which refuses to measure instead).
    n_verify_errors: int = 0
    #: Work counters aggregated over the points measured by this run, in
    #: enumeration order (FLOPs executed, bytes moved, all-reduce volume,
    #: cache hits) — independent of worker count and of whether a trace
    #: was requested.
    counters: dict[str, float] = field(default_factory=dict)
    #: Points this run gated out for not fitting device memory — the OOM
    #: frontier an edge-backend campaign maps.
    n_oom: int = 0

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_executed / self.elapsed_seconds

    def summary(self) -> str:
        oom = f", {self.n_oom} OOM" if self.n_oom else ""
        return (
            f"campaign {self.scenario}: {self.n_points} points "
            f"({self.n_executed} measured, {self.n_restored} restored{oom}) "
            f"in {self.elapsed_seconds:.2f}s with {self.workers} worker(s) "
            f"— {self.points_per_second:.1f} points/s, "
            f"profile cache {self.cache.summary()}"
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "workers": self.workers,
            "n_points": self.n_points,
            "n_restored": self.n_restored,
            "n_executed": self.n_executed,
            "n_records": self.n_records,
            "elapsed_seconds": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
            "n_verify_errors": self.n_verify_errors,
            "n_oom": self.n_oom,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass(frozen=True)
class CampaignResult:
    dataset: Dataset
    stats: CampaignStats


def run_campaign(
    spec: CampaignSpec,
    workers: int = 0,
    store: "CampaignStore | None" = None,
    progress: Callable[[int, int], None] | None = None,
    verify: str = "warn",
    tracer: "Tracer | None" = None,
    grid_cache: bool = True,
) -> CampaignResult:
    """Execute a campaign and assemble its dataset in enumeration order.

    ``workers <= 1`` measures in process; larger values fan points out over
    a process pool.  Either way the record stream is identical.  With a
    ``store``, already-recorded points are restored instead of re-measured
    and new results are appended as they complete, making interrupted
    campaigns resumable at point granularity.  ``progress(done, total)`` is
    invoked after each newly measured point.

    ``verify`` controls pre-measurement graph verification: ``"warn"``
    (default) measures despite ERROR diagnostics but warns and counts them
    in the stats, ``"strict"`` raises
    :class:`~repro.analysis.verify.GraphVerificationError` instead of
    producing subtly wrong numbers, ``"off"`` skips verification.

    With a ``tracer``, the full sweep is additionally traced via
    :func:`trace_campaign` after measuring — a serial post-pass, so the
    trace (and the record stream, and the stats counters) is identical
    for any ``workers`` value and any resume split.

    ``grid_cache`` (the default) amortises the deterministic clean-time
    components across the sweep through :data:`CLEAN_TIME_CACHE`; the
    record stream is bit-identical with it off, just slower — the switch
    exists for the perf-trajectory baseline and the equivalence tests.
    """
    n_verify_errors = _run_verification(spec, verify)
    points = enumerate_points(spec)
    restored = store.restored_points() if store is not None else {}
    pending = [
        (i, p) for i, p in enumerate(points) if p.key not in restored
    ]

    results: dict[int, list[TimingRecord]] = {}
    counters: dict[str, float] = {}
    cache_delta = CacheStats()
    n_oom = 0
    start = time.perf_counter()
    if workers > 1 and pending:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(spec, grid_cache),
        ) as pool:
            chunksize = max(1, len(pending) // (workers * 8))
            outcomes = pool.map(_run_point_task, pending, chunksize=chunksize)
            # pool.map yields in submission (= enumeration) order, so the
            # counter floats accumulate identically to a serial run.
            for index, key, records, point_delta, delta, gate in outcomes:
                results[index] = records
                merge_counters(counters, point_delta)
                cache_delta += delta
                n_oom += gate == "oom"
                if store is not None:
                    store.append(key, records, status=gate)
                if progress is not None:
                    progress(len(results), len(pending))
    else:
        # One _measure_point call per point is the determinism contract:
        # noise is seeded from each point's identity, records append in
        # enumeration order, and the store checkpoints between points.
        # The batchable clean components are amortised via the grid cache,
        # not by batching points.
        for index, point in pending:
            before = engine_cache_stats()
            records, point_delta, gate = _measure_point(  # repro-lint: disable=PERF006
                spec, point, grid_cache=grid_cache
            )
            cache_delta += engine_cache_stats() - before
            results[index] = records
            merge_counters(counters, point_delta)
            n_oom += gate == "oom"
            if store is not None:
                store.append(point.key, records, status=gate)
            if progress is not None:
                progress(len(results), len(pending))
    elapsed = time.perf_counter() - start

    dataset = Dataset()
    for i, point in enumerate(points):
        if point.key in restored:
            dataset.extend(restored[point.key])
        else:
            dataset.extend(results[i])

    if tracer is not None and tracer.enabled:
        trace_campaign(spec, tracer, points, grid_cache=grid_cache)

    merge_counters(counters, cache_delta.as_counters())
    stats = CampaignStats(
        scenario=spec.scenario,
        workers=max(1, workers),
        n_points=len(points),
        n_restored=len(restored),
        n_executed=len(pending),
        n_records=len(dataset),
        elapsed_seconds=elapsed,
        cache=cache_delta,
        n_verify_errors=n_verify_errors,
        counters=counters,
        n_oom=n_oom,
    )
    if store is not None:
        store.finalize(stats)
    return CampaignResult(dataset=dataset, stats=stats)
