"""Modeling-effort accounting (the Table 4 "Modeling effort" column).

The paper's selling point is cheap model construction: "<5000 data points"
and a linear solve.  These helpers quantify a campaign's cost — the
simulated wall time that would have been spent benchmarking — so the
effort claim in the comparison table is a measured number, not a slogan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchdata.records import Dataset


@dataclass(frozen=True)
class CampaignCost:
    """Benchmarking effort of one campaign."""

    n_points: int
    #: Total measured wall time across all records, seconds.
    benchmark_seconds: float
    n_models: int
    scenarios: tuple[str, ...]

    @property
    def benchmark_hours(self) -> float:
        return self.benchmark_seconds / 3600.0

    def summary(self) -> str:
        return (
            f"{self.n_points} data points over {self.n_models} models, "
            f"{self.benchmark_seconds:.0f} s "
            f"({self.benchmark_hours:.2f} h) of benchmark time"
        )


def campaign_cost(data: Dataset, warmup_factor: float = 2.0) -> CampaignCost:
    """Effort of collecting a campaign.

    ``warmup_factor`` accounts for the warm-up/repeat runs a real harness
    performs around each timed measurement.
    """
    if warmup_factor < 1.0:
        raise ValueError("warmup_factor must be >= 1")
    total = sum(r.t_total for r in data) * warmup_factor
    return CampaignCost(
        n_points=len(data),
        benchmark_seconds=total,
        n_models=len(data.models()),
        scenarios=tuple(sorted({r.scenario for r in data})),
    )
