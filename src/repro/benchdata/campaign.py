"""Benchmark sweep generators.

The sweeps mirror the paper's campaign: "batch sizes from one to 2048 and
image sizes from 32 to 224 pixels, as long as the available memory on the
target system allows", yielding a few thousand data points per scenario
(the paper collects "less than 5,000").

Each generator is a thin wrapper that builds a
:class:`~repro.benchdata.engine.CampaignSpec` and hands it to
:func:`~repro.benchdata.engine.run_campaign`; pass ``workers=N`` to fan the
sweep out over a process pool — the record stream is byte-identical either
way.  Use the engine directly for progress callbacks, throughput stats, or
a resumable on-disk store.
"""

from __future__ import annotations

from typing import Sequence

from repro.benchdata.engine import (
    CampaignSpec,
    block_profile,
    run_campaign,
)
from repro.benchdata.records import Dataset
from repro.hardware.device import A100_80GB, DeviceSpec
from repro.zoo.blocks import BLOCK_CATALOGUE, BlockSpec

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_IMAGE_SIZES",
    "DEFAULT_MODELS",
    "block_profile",
    "inference_campaign",
    "training_campaign",
    "distributed_campaign",
    "block_campaign",
]

#: Paper sweep: batch sizes 1…2048 (powers of two).
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                        1024, 2048)

#: Paper sweep: image sizes 32…224 px.
DEFAULT_IMAGE_SIZES: tuple[int, ...] = (32, 64, 96, 128, 160, 192, 224)

#: The ConvNets evaluated in the paper's Tables 1 and 3.
DEFAULT_MODELS: tuple[str, ...] = (
    "alexnet",
    "vgg11",
    "vgg16",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "resnext50_32x4d",
    "squeezenet1_0",
    "mobilenet_v2",
    "mobilenet_v3_large",
    "efficientnet_b0",
    "regnet_x_400mf",
    "regnet_x_8gf",
    "densenet121",
)


def inference_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
    max_seconds: float | None = None,
    workers: int = 0,
    transform: str = "",
    backend: str = "",
) -> Dataset:
    """Measure inference across the sweep grid on one device.

    ``max_seconds`` skips configurations whose estimated runtime exceeds the
    budget — the practical cap any real campaign applies (a batch-2048
    VGG16 run on one CPU core would take the better part of an hour).

    ``transform="inference"`` measures the fused graphs deployment
    runtimes actually execute (BatchNorm folded, cheap activations
    absorbed; see :mod:`repro.graph.passes`) — the fused-inference
    workload for fused-vs-raw prediction comparisons.

    ``backend`` selects an execution backend from
    :data:`repro.hardware.backend.BACKEND_REGISTRY` (``""`` = the default
    roofline simulator).
    """
    spec = CampaignSpec(
        scenario="inference",
        models=tuple(models),
        device=device,
        batch_sizes=tuple(batch_sizes),
        image_sizes=tuple(image_sizes),
        seed=seed,
        reps=reps,
        max_seconds=max_seconds,
        transform=transform,
        backend=backend,
    )
    return run_campaign(spec, workers=workers).dataset


def training_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
    max_seconds: float | None = None,
    workers: int = 0,
    backend: str = "",
) -> Dataset:
    """Measure single-device training steps across the sweep grid."""
    spec = CampaignSpec(
        scenario="training",
        models=tuple(models),
        device=device,
        batch_sizes=tuple(batch_sizes),
        image_sizes=tuple(image_sizes),
        seed=seed,
        reps=reps,
        max_seconds=max_seconds,
        backend=backend,
    )
    return run_campaign(spec, workers=workers).dataset


def distributed_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    gpus_per_node: int = 4,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = (16, 32, 64, 128, 256),
    image_sizes: Sequence[int] = (64, 128, 192),
    seed: int = 0,
    reps: int = 1,
    workers: int = 0,
    backend: str = "",
) -> Dataset:
    """Measure distributed training steps across node counts (weak scaling:
    ``batch`` is the per-device mini-batch)."""
    spec = CampaignSpec(
        scenario="distributed",
        models=tuple(models),
        device=device,
        batch_sizes=tuple(batch_sizes),
        image_sizes=tuple(image_sizes),
        seed=seed,
        reps=reps,
        node_counts=tuple(node_counts),
        gpus_per_node=gpus_per_node,
        backend=backend,
    )
    return run_campaign(spec, workers=workers).dataset


def block_campaign(
    blocks: Sequence[BlockSpec] = BLOCK_CATALOGUE,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
    workers: int = 0,
) -> Dataset:
    """Measure block-wise inference (Table 2 / Figure 4)."""
    spec = CampaignSpec(
        scenario="blocks",
        models=tuple(b.name for b in blocks),
        device=device,
        batch_sizes=tuple(batch_sizes),
        image_sizes=tuple(image_sizes),
        seed=seed,
        reps=reps,
    )
    return run_campaign(spec, workers=workers).dataset
