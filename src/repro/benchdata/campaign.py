"""Benchmark sweep generators.

The sweeps mirror the paper's campaign: "batch sizes from one to 2048 and
image sizes from 32 to 224 pixels, as long as the available memory on the
target system allows", yielding a few thousand data points per scenario
(the paper collects "less than 5,000").
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.distributed.cluster import ClusterSpec
from repro.distributed.trainer import DistributedTrainer
from repro.hardware.device import A100_80GB, DeviceSpec
from repro.hardware.executor import SimulatedExecutor
from repro.hardware.memory import fits
from repro.hardware.roofline import CostProfile, profile_graph, zoo_profile
from repro.zoo.blocks import BLOCK_CATALOGUE, BlockSpec, build_block
from repro.zoo.registry import get_entry

#: Paper sweep: batch sizes 1…2048 (powers of two).
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                        1024, 2048)

#: Paper sweep: image sizes 32…224 px.
DEFAULT_IMAGE_SIZES: tuple[int, ...] = (32, 64, 96, 128, 160, 192, 224)

#: The ConvNets evaluated in the paper's Tables 1 and 3.
DEFAULT_MODELS: tuple[str, ...] = (
    "alexnet",
    "vgg11",
    "vgg16",
    "resnet18",
    "resnet50",
    "wide_resnet50_2",
    "resnext50_32x4d",
    "squeezenet1_0",
    "mobilenet_v2",
    "mobilenet_v3_large",
    "efficientnet_b0",
    "regnet_x_400mf",
    "regnet_x_8gf",
    "densenet121",
)


def _valid_images(model: str, image_sizes: Sequence[int]) -> list[int]:
    min_size = get_entry(model).min_image_size
    return [s for s in image_sizes if s >= min_size]


@lru_cache(maxsize=1024)
def block_profile(block_name: str, image_size: int) -> CostProfile:
    """Cached cost profile of a Table 2 block at a given parent image size."""
    for spec in BLOCK_CATALOGUE:
        if spec.name == block_name:
            return profile_graph(build_block(spec, image_size))
    raise KeyError(f"unknown block {block_name!r}")


def inference_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
    max_seconds: float | None = None,
) -> Dataset:
    """Measure inference across the sweep grid on one device.

    ``max_seconds`` skips configurations whose estimated runtime exceeds the
    budget — the practical cap any real campaign applies (a batch-2048
    VGG16 run on one CPU core would take the better part of an hour).
    """
    executor = SimulatedExecutor(device, seed=seed)
    data = Dataset()
    for model in models:
        for image in _valid_images(model, image_sizes):
            profile = zoo_profile(model, image)
            features = ConvNetFeatures.from_profile(profile)
            for batch in batch_sizes:
                if not fits(profile, batch, device, training=False):
                    continue
                if (
                    max_seconds is not None
                    and executor.forward_time_clean(profile, batch)
                    > max_seconds
                ):
                    continue
                for rep in range(reps):
                    t = executor.measure_inference(profile, batch, rep=rep)
                    data.append(
                        TimingRecord(
                            model=model,
                            device=device.name,
                            image_size=image,
                            batch=batch,
                            nodes=1,
                            devices=1,
                            scenario="inference",
                            features=features,
                            t_fwd=t,
                            rep=rep,
                        )
                    )
    return data


def training_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
    max_seconds: float | None = None,
) -> Dataset:
    """Measure single-device training steps across the sweep grid."""
    executor = SimulatedExecutor(device, seed=seed)
    data = Dataset()
    for model in models:
        for image in _valid_images(model, image_sizes):
            profile = zoo_profile(model, image)
            features = ConvNetFeatures.from_profile(profile)
            for batch in batch_sizes:
                if not fits(profile, batch, device, training=True):
                    continue
                if max_seconds is not None and (
                    executor.forward_time_clean(profile, batch)
                    + executor.backward_time_clean(profile, batch)
                ) > max_seconds:
                    continue
                for rep in range(reps):
                    phases = executor.measure_training_step(
                        profile, batch, rep=rep
                    )
                    data.append(
                        TimingRecord(
                            model=model,
                            device=device.name,
                            image_size=image,
                            batch=batch,
                            nodes=1,
                            devices=1,
                            scenario="training",
                            features=features,
                            t_fwd=phases.forward,
                            t_bwd=phases.backward,
                            t_grad=phases.grad_update,
                            rep=rep,
                        )
                    )
    return data


def distributed_campaign(
    models: Sequence[str] = DEFAULT_MODELS,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    gpus_per_node: int = 4,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = (16, 32, 64, 128, 256),
    image_sizes: Sequence[int] = (64, 128, 192),
    seed: int = 0,
    reps: int = 1,
) -> Dataset:
    """Measure distributed training steps across node counts (weak scaling:
    ``batch`` is the per-device mini-batch)."""
    data = Dataset()
    for nodes in node_counts:
        cluster = ClusterSpec(
            nodes=nodes, gpus_per_node=gpus_per_node, device=device
        )
        trainer = DistributedTrainer(cluster, seed=seed)
        for model in models:
            for image in _valid_images(model, image_sizes):
                profile = zoo_profile(model, image)
                features = ConvNetFeatures.from_profile(profile)
                for batch in batch_sizes:
                    if not fits(profile, batch, device, training=True):
                        continue
                    for rep in range(reps):
                        phases = trainer.measure_step(profile, batch, rep=rep)
                        data.append(
                            TimingRecord(
                                model=model,
                                device=device.name,
                                image_size=image,
                                batch=batch,
                                nodes=nodes,
                                devices=cluster.total_devices,
                                scenario="distributed",
                                features=features,
                                t_fwd=phases.forward,
                                t_bwd=phases.backward,
                                t_grad=phases.grad_update,
                                rep=rep,
                            )
                        )
    return data


def block_campaign(
    blocks: Sequence[BlockSpec] = BLOCK_CATALOGUE,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    image_sizes: Sequence[int] = DEFAULT_IMAGE_SIZES,
    seed: int = 0,
    reps: int = 1,
) -> Dataset:
    """Measure block-wise inference (Table 2 / Figure 4)."""
    executor = SimulatedExecutor(device, seed=seed)
    data = Dataset()
    for spec in blocks:
        min_size = get_entry(spec.model).min_image_size
        for image in image_sizes:
            if image < min_size:
                continue
            profile = block_profile(spec.name, image)
            features = ConvNetFeatures.from_profile(profile)
            for batch in batch_sizes:
                if not fits(profile, batch, device, training=False):
                    continue
                for rep in range(reps):
                    t = executor.measure_inference(profile, batch, rep=rep)
                    data.append(
                        TimingRecord(
                            model=spec.name,
                            device=device.name,
                            image_size=image,
                            batch=batch,
                            nodes=1,
                            devices=1,
                            scenario="inference",
                            features=features,
                            t_fwd=t,
                            rep=rep,
                        )
                    )
    return data
