"""Timing records and datasets.

A record is self-contained: besides the measured phase times it carries the
ConvNet metric vector (batch-size-one FLOPs/Inputs/Outputs/Weights/Layers)
of the network it was measured on, so performance models can be fitted from
a dataset alone — no zoo access needed.  That also makes the leave-one-out
protocol a pure dataset operation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True)
class ConvNetFeatures:
    """ConvMeter's inherent network metrics at batch size one (Section 3)."""

    flops: float
    inputs: float
    outputs: float
    weights: float
    layers: int

    @staticmethod
    def from_profile(profile) -> "ConvNetFeatures":
        """Extract from a :class:`repro.hardware.roofline.CostProfile`."""
        return ConvNetFeatures(
            flops=profile.total_flops,
            inputs=profile.conv_input_elems,
            outputs=profile.conv_output_elems,
            weights=profile.total_params,
            layers=profile.parametric_layers,
        )


@dataclass(frozen=True)
class TimingRecord:
    """One measured configuration."""

    model: str
    device: str
    image_size: int
    #: Per-device (mini-)batch size b = B/N.
    batch: int
    nodes: int
    #: Total computing devices N.
    devices: int
    #: "inference", "training", or "distributed".
    scenario: str
    features: ConvNetFeatures
    t_fwd: float
    t_bwd: float = 0.0
    t_grad: float = 0.0
    rep: int = 0
    #: Execution backend the point was measured under; ``""`` is the
    #: default roofline backend (and is omitted from serialised records,
    #: so pre-backend datasets remain byte-identical round-trips).
    backend: str = ""

    @property
    def t_total(self) -> float:
        return self.t_fwd + self.t_bwd + self.t_grad

    @property
    def global_batch(self) -> int:
        return self.batch * self.devices

    @property
    def throughput(self) -> float:
        """Images per second of one training step (or inference)."""
        return self.global_batch / self.t_total

    def to_dict(self) -> dict:
        d = asdict(self)
        if not d["backend"]:
            del d["backend"]
        return d

    @staticmethod
    def from_dict(d: dict) -> "TimingRecord":
        d = dict(d)
        try:
            d["features"] = ConvNetFeatures(**d["features"])
            return TimingRecord(**d)
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed timing record (missing or unknown fields): {exc}"
            ) from exc


@dataclass
class Dataset:
    """An ordered collection of timing records with filtering helpers."""

    records: list[TimingRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TimingRecord]:
        return iter(self.records)

    def __getitem__(self, i: int) -> TimingRecord:
        return self.records[i]

    def append(self, record: TimingRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[TimingRecord]) -> None:
        self.records.extend(records)

    # -- filtering ---------------------------------------------------------

    def filter(self, predicate: Callable[[TimingRecord], bool]) -> "Dataset":
        return Dataset([r for r in self.records if predicate(r)])

    def for_model(self, model: str) -> "Dataset":
        return self.filter(lambda r: r.model == model)

    def excluding_model(self, model: str) -> "Dataset":
        """Everything except one model — the paper's leave-one-out split."""
        return self.filter(lambda r: r.model != model)

    def for_device(self, device: str) -> "Dataset":
        return self.filter(lambda r: r.device == device)

    def for_backend(self, backend: str) -> "Dataset":
        """Records measured under one execution backend (``""`` = default)."""
        name = "" if backend == "roofline" else backend
        return self.filter(lambda r: r.backend == name)

    def models(self) -> list[str]:
        """Distinct model names in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.model, None)
        return list(seen)

    def node_counts(self) -> list[int]:
        return sorted({r.nodes for r in self.records})

    # -- serialization --------------------------------------------------------

    def to_json(self, path: str | Path) -> None:
        payload = {"records": [r.to_dict() for r in self.records]}
        Path(path).write_text(json.dumps(payload))

    @staticmethod
    def from_json(path: str | Path) -> "Dataset":
        payload = json.loads(Path(path).read_text())
        return Dataset(
            [TimingRecord.from_dict(d) for d in payload["records"]]
        )

    def with_scenario(self, scenario: str) -> "Dataset":
        return self.filter(lambda r: r.scenario == scenario)

    def summary(self) -> str:
        models = self.models()
        return (
            f"{len(self)} records, {len(models)} models, "
            f"devices={sorted({r.device for r in self.records})}, "
            f"nodes={self.node_counts()}"
        )


def rescale_record(record: TimingRecord, **changes) -> TimingRecord:
    """Dataclass ``replace`` re-export for campaign post-processing."""
    return replace(record, **changes)


def aggregate_reps(data: Dataset) -> Dataset:
    """Collapse repeated measurements of one configuration into their mean.

    Records sharing (model, device, image, batch, nodes, devices, scenario)
    are averaged per phase; the result has ``rep = 0`` and one record per
    configuration — the aggregation real campaigns apply before fitting.
    """
    groups: dict[tuple, list[TimingRecord]] = {}
    for r in data:
        key = (r.model, r.device, r.image_size, r.batch, r.nodes,
               r.devices, r.scenario, r.backend)
        groups.setdefault(key, []).append(r)
    out = Dataset()
    for members in groups.values():
        n = len(members)
        first = members[0]
        out.append(
            replace(
                first,
                t_fwd=sum(m.t_fwd for m in members) / n,
                t_bwd=sum(m.t_bwd for m in members) / n,
                t_grad=sum(m.t_grad for m in members) / n,
                rep=0,
            )
        )
    return out
