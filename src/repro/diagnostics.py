"""Structured diagnostics shared by the graph verifier and the linter.

Both static-analysis fronts — :mod:`repro.analysis.verify` (checks the
*data*: ConvNet graph IRs) and :mod:`repro.lint` (checks the *code*:
determinism hazards in the repository itself) — report findings as
:class:`Diagnostic` records so the CLI, CI, and tests consume one schema:
a stable rule id, a severity, a location (layer path or ``file:line``),
a human message, and a fix hint.

Severities follow compiler convention: ``ERROR`` findings are defects that
corrupt downstream results and make ``repro verify`` / ``repro lint`` exit
non-zero; ``WARN`` flags suspicious-but-possibly-intentional constructs;
``INFO`` is advisory only.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARN = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis rule."""

    #: Stable rule identifier (``IR0xx`` for graph rules, ``DET0xx`` for
    #: determinism lint rules); documented in ``docs/static-analysis.md``.
    rule: str
    severity: Severity
    #: Layer path (``graph:node``) or source position (``file:line``).
    location: str
    message: str
    #: Short suggestion for fixing the finding ("" when self-evident).
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity}: {self.location}: [{self.rule}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


def sort_diagnostics(diags: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Most severe first, then by location and rule id — a stable order for
    text output, JSON snapshots, and tests."""
    return sorted(
        diags, key=lambda d: (-int(d.severity), d.location, d.rule)
    )


def count_by_severity(diags: Sequence[Diagnostic]) -> dict[Severity, int]:
    counts = {Severity.ERROR: 0, Severity.WARN: 0, Severity.INFO: 0}
    for d in diags:
        counts[d.severity] += 1
    return counts


def has_errors(diags: Sequence[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diags)


def summary_line(
    diags: Sequence[Diagnostic], subjects: int, unit: str
) -> str:
    """One-line result summary, e.g. ``2 errors, 1 warning across 33 models``.

    ``unit`` names what was analysed (``model(s)``, ``file(s)``); the caller
    supplies the subject count so gated/empty inputs still read correctly.
    """
    counts = count_by_severity(diags)
    n_err, n_warn = counts[Severity.ERROR], counts[Severity.WARN]
    parts = [
        f"{n_err} error{'s' if n_err != 1 else ''}",
        f"{n_warn} warning{'s' if n_warn != 1 else ''}",
    ]
    if counts[Severity.INFO]:
        parts.append(f"{counts[Severity.INFO]} info")
    return (
        f"{', '.join(parts)} across {subjects} "
        f"{unit}{'s' if subjects != 1 else ''}"
    )


def render_text(
    diags: Sequence[Diagnostic], subjects: int, unit: str, quiet: bool = False
) -> str:
    """Human-readable report: one line per diagnostic plus the summary.

    ``quiet`` suppresses the per-diagnostic lines and keeps only the
    summary — the contract of the CLI ``--quiet`` flag.
    """
    ordered = sort_diagnostics(diags)
    lines = [] if quiet else [d.render() for d in ordered]
    lines.append(summary_line(diags, subjects, unit))
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic], subjects: int, unit: str) -> str:
    """Machine-readable report with a stable top-level schema."""
    counts = count_by_severity(diags)
    payload = {
        "diagnostics": [d.to_dict() for d in sort_diagnostics(diags)],
        "summary": {
            "errors": counts[Severity.ERROR],
            "warnings": counts[Severity.WARN],
            "infos": counts[Severity.INFO],
            "subjects": subjects,
            "unit": unit,
        },
    }
    return json.dumps(payload, indent=2)


__all__ = [
    "Severity",
    "Diagnostic",
    "sort_diagnostics",
    "count_by_severity",
    "has_errors",
    "summary_line",
    "render_text",
    "render_json",
]
