"""Layer taxonomy for the ConvNet IR.

Each layer knows how to infer its output shape from its input shapes, how
many parameters it owns, and how many floating-point operations it costs per
sample.  FLOPs follow the paper's convention (Section 3): the cost of the
mathematical definition of the operator, "without considering any
optimization techniques or actual hardware implementation".  Multiply and
accumulate are counted as two FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.tensor import TensorShape, conv_output_hw, pool_output_hw_ceil


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    if isinstance(v, tuple):
        return v
    return (v, v)


@dataclass(frozen=True)
class Layer:
    """Base class for all IR layers."""

    #: Number of inputs the layer expects; ``None`` means variadic (>= 1).
    ARITY: int | None = field(default=1, init=False, repr=False)

    def infer_shape(self, inputs: Sequence[TensorShape]) -> TensorShape:
        """Output shape given per-sample input shapes."""
        self._check_arity(inputs)
        return self._infer(inputs)

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        return inputs[0]

    def _check_arity(self, inputs: Sequence[TensorShape]) -> None:
        if self.ARITY is None:
            if not inputs:
                raise ValueError(f"{type(self).__name__} needs at least one input")
        elif len(inputs) != self.ARITY:
            raise ValueError(
                f"{type(self).__name__} expects {self.ARITY} input(s), "
                f"got {len(inputs)}"
            )

    def param_count(self) -> int:
        """Number of learnable parameters."""
        return 0

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        """Floating-point operations per sample (MAC = 2 FLOPs)."""
        return 0

    @property
    def is_conv(self) -> bool:
        """True for convolutional layers (the metrics the paper sums over)."""
        return False

    @property
    def has_params(self) -> bool:
        return self.param_count() > 0


@dataclass(frozen=True)
class Input(Layer):
    """Graph input placeholder carrying the image shape."""

    shape: TensorShape = TensorShape(3, 224, 224)

    ARITY = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        return self.shape


@dataclass(frozen=True)
class Conv2d(Layer):
    """2-D convolution, optionally grouped/depthwise and dilated."""

    in_channels: int = 0
    out_channels: int = 0
    kernel_size: int | tuple[int, int] = 3
    stride: int | tuple[int, int] = 1
    padding: int | tuple[int, int] = 0
    groups: int = 1
    dilation: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError("Conv2d channel counts must be positive")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"groups={self.groups} must divide in_channels="
                f"{self.in_channels} and out_channels={self.out_channels}"
            )

    @property
    def is_conv(self) -> bool:
        return True

    @property
    def is_depthwise(self) -> bool:
        """Depthwise convolutions have one input channel per group."""
        return self.groups == self.in_channels and self.groups > 1

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError("Conv2d requires a spatial input")
        if shape.channels != self.in_channels:
            raise ValueError(
                f"Conv2d expects {self.in_channels} channels, got {shape.channels}"
            )
        kh, kw = _pair(self.kernel_size)
        sh, sw = _pair(self.stride)
        ph, pw = _pair(self.padding)
        out_h = conv_output_hw(shape.height, kh, sh, ph, self.dilation)
        out_w = conv_output_hw(shape.width, kw, sw, pw, self.dilation)
        return TensorShape(self.out_channels, out_h, out_w)

    def param_count(self) -> int:
        kh, kw = _pair(self.kernel_size)
        weights = self.out_channels * (self.in_channels // self.groups) * kh * kw
        return weights + (self.out_channels if self.bias else 0)

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        kh, kw = _pair(self.kernel_size)
        macs_per_out = (self.in_channels // self.groups) * kh * kw
        macs = output.numel * macs_per_out
        bias_adds = output.numel if self.bias else 0
        return 2 * macs + bias_adds


@dataclass(frozen=True)
class BatchNorm2d(Layer):
    """Batch normalisation over channels; at inference a per-channel affine."""

    num_features: int = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if shape.channels != self.num_features:
            raise ValueError(
                f"BatchNorm2d expects {self.num_features} channels, "
                f"got {shape.channels}"
            )
        return shape

    def param_count(self) -> int:
        return 2 * self.num_features  # scale and shift

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return 2 * output.numel  # one multiply, one add per element


@dataclass(frozen=True)
class Activation(Layer):
    """Pointwise nonlinearity.

    ``kind`` is informational (relu, relu6, silu, hardswish, sigmoid,
    hardsigmoid, tanh, gelu); the cost model charges a small per-element cost
    that differs only between cheap (clamp-style) and transcendental kinds.
    """

    kind: str = "relu"

    _CHEAP = frozenset({"relu", "relu6", "hardswish", "hardsigmoid", "leaky_relu"})

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        per_elem = 1 if self.kind in self._CHEAP else 4
        return per_elem * output.numel


def _epilogue_flops(activation: str, output: TensorShape) -> int:
    """FLOPs of an activation absorbed into a producing layer's epilogue.

    The arithmetic survives fusion (the fused kernel still clamps every
    output element); only the extra tensor round-trip disappears, which is
    a memory effect, not a FLOP effect.
    """
    if not activation:
        return 0
    per_elem = 1 if activation in Activation._CHEAP else 4
    return per_elem * output.numel


@dataclass(frozen=True)
class FusedConv2d(Conv2d):
    """A convolution with a folded BatchNorm and/or an absorbed activation.

    Produced by the :mod:`repro.graph.passes` rewrites, never by model
    builders.  ``bn_features`` counts the channels of a folded BatchNorm —
    its scale/shift pairs remain learnable state baked into the kernel, so
    ``param_count`` keeps the paper's Weights metric W exactly conserved
    under folding.  ``activation`` names an absorbed pointwise epilogue;
    its FLOPs stay (the fused kernel still applies it) while the separate
    activation tensor round-trip disappears from the cost model because the
    standalone node no longer exists.
    """

    bn_features: int = 0
    activation: str = ""

    def param_count(self) -> int:
        return super().param_count() + 2 * self.bn_features

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return self.conv_flops(inputs, output) + _epilogue_flops(
            self.activation, output
        )

    def conv_flops(
        self, inputs: Sequence[TensorShape], output: TensorShape
    ) -> int:
        """The convolution's own mathematical cost, excluding the epilogue.

        Folding a BatchNorm rescales the kernel in place, so this equals
        the unfused convolution's FLOPs exactly — the conservation law the
        verifier's transform check asserts.
        """
        return Conv2d.flops(self, inputs, output)


@dataclass(frozen=True)
class _Pool2d(Layer):
    kernel_size: int | tuple[int, int] = 2
    stride: int | tuple[int, int] | None = None
    padding: int | tuple[int, int] = 0
    ceil_mode: bool = False

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError(f"{type(self).__name__} requires a spatial input")
        kh, kw = _pair(self.kernel_size)
        stride = self.stride if self.stride is not None else self.kernel_size
        sh, sw = _pair(stride)
        ph, pw = _pair(self.padding)
        if self.ceil_mode:
            out_h = pool_output_hw_ceil(shape.height, kh, sh, ph)
            out_w = pool_output_hw_ceil(shape.width, kw, sw, pw)
        else:
            out_h = conv_output_hw(shape.height, kh, sh, ph)
            out_w = conv_output_hw(shape.width, kw, sw, pw)
        return TensorShape(shape.channels, out_h, out_w)

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        kh, kw = _pair(self.kernel_size)
        return output.numel * kh * kw


@dataclass(frozen=True)
class MaxPool2d(_Pool2d):
    """Max pooling."""


@dataclass(frozen=True)
class AvgPool2d(_Pool2d):
    """Average pooling."""


@dataclass(frozen=True)
class AdaptiveAvgPool2d(Layer):
    """Average pooling to a fixed output size regardless of input size."""

    output_size: int | tuple[int, int] = 1

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError("AdaptiveAvgPool2d requires a spatial input")
        oh, ow = _pair(self.output_size)
        return TensorShape(shape.channels, oh, ow)

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        # Every input element is read and accumulated exactly once.
        return inputs[0].numel + output.numel


@dataclass(frozen=True)
class GlobalAvgPool2d(Layer):
    """Squeeze step of squeeze-and-excitation: spatial mean per channel."""

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError("GlobalAvgPool2d requires a spatial input")
        return TensorShape(shape.channels, 1, 1)

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return inputs[0].numel


@dataclass(frozen=True)
class Linear(Layer):
    """Fully connected layer on flat vectors."""

    in_features: int = 0
    out_features: int = 0
    bias: bool = True

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if shape.is_spatial:
            raise ValueError("Linear requires a flat input; insert Flatten first")
        if shape.channels != self.in_features:
            raise ValueError(
                f"Linear expects {self.in_features} features, got {shape.channels}"
            )
        return TensorShape(self.out_features)

    def param_count(self) -> int:
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        macs = self.in_features * self.out_features
        return 2 * macs + (self.out_features if self.bias else 0)


@dataclass(frozen=True)
class FusedLinear(Linear):
    """A fully connected layer with a folded norm / absorbed activation.

    The linear-layer counterpart of :class:`FusedConv2d`, with the same
    conservation accounting.
    """

    bn_features: int = 0
    activation: str = ""

    def param_count(self) -> int:
        return super().param_count() + 2 * self.bn_features

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return Linear.flops(self, inputs, output) + _epilogue_flops(
            self.activation, output
        )


@dataclass(frozen=True)
class Flatten(Layer):
    """Collapse a feature map into a flat vector."""

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        return inputs[0].flattened()


@dataclass(frozen=True)
class Dropout(Layer):
    """Dropout; a no-op for inference cost, kept for architectural fidelity."""

    p: float = 0.5


@dataclass(frozen=True)
class Add(Layer):
    """Elementwise sum of identically shaped tensors (residual join)."""

    ARITY = None

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        first = inputs[0]
        for other in inputs[1:]:
            if other != first:
                raise ValueError(f"Add inputs differ in shape: {first} vs {other}")
        return first

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return (len(inputs) - 1) * output.numel


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation (DenseNet, Inception branches)."""

    ARITY = None

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        first = inputs[0]
        if not first.is_spatial:
            raise ValueError("Concat requires spatial inputs")
        for other in inputs[1:]:
            if (other.height, other.width) != (first.height, first.width):
                raise ValueError(
                    f"Concat spatial dims differ: {first} vs {other}"
                )
        channels = sum(s.channels for s in inputs)
        return TensorShape(channels, first.height, first.width)


@dataclass(frozen=True)
class Multiply(Layer):
    """Elementwise product with channel broadcasting (SE excitation scale)."""

    ARITY = 2

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        a, b = inputs
        if a.channels != b.channels:
            raise ValueError(f"Multiply channel mismatch: {a} vs {b}")
        # Broadcast the (C,1,1) gate over the (C,H,W) map.
        return a if a.numel >= b.numel else b

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return output.numel


@dataclass(frozen=True)
class LocalResponseNorm(Layer):
    """AlexNet-era local response normalisation."""

    size: int = 5

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        # size multiply-accumulates plus a divide/power per element.
        return output.numel * (2 * self.size + 4)


@dataclass(frozen=True)
class ZeroPad2d(Layer):
    """Explicit spatial zero padding."""

    padding: int | tuple[int, int] = 1

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError("ZeroPad2d requires a spatial input")
        ph, pw = _pair(self.padding)
        return TensorShape(shape.channels, shape.height + 2 * ph, shape.width + 2 * pw)
