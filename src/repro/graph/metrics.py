"""Per-layer cost accounting for ConvNet graphs.

These counts are the raw material for ConvMeter's metric vector (Section 3
of the paper): FLOPs per layer, input/output tensor element counts, and
parameter counts — all per sample (batch size one), since every one of these
quantities scales linearly with the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import ComputeGraph, Node
from repro.graph.layers import Input


@dataclass(frozen=True)
class LayerCost:
    """Static cost of one layer for a single sample."""

    name: str
    layer_type: str
    block: str
    flops: int
    input_elems: int
    output_elems: int
    params: int
    is_conv: bool
    #: Convolution group count (1 for everything else).
    conv_groups: int = 1
    #: True for depthwise convolutions (one input channel per group).
    is_depthwise: bool = False
    #: True for 1x1 (pointwise) convolutions.
    is_pointwise: bool = False

    @property
    def input_bytes(self) -> int:
        return 4 * self.input_elems

    @property
    def output_bytes(self) -> int:
        return 4 * self.output_elems

    @property
    def weight_bytes(self) -> int:
        return 4 * self.params


@dataclass(frozen=True)
class CostSummary:
    """Aggregate costs of a graph for a single sample."""

    #: FLOPs over all layers (paper metric F).
    flops: int
    #: Sum of input tensor sizes of convolutional layers (paper metric I).
    conv_input_elems: int
    #: Sum of output tensor sizes of convolutional layers (paper metric O).
    conv_output_elems: int
    #: Total learnable parameters (paper metric W).
    weights: int
    #: Number of parameter-owning layers (paper metric L).
    layers: int
    #: Total activation elements across all layers (memory-footprint input).
    total_output_elems: int

    def at_batch(self, batch: int) -> "CostSummary":
        """Metric vector for a mini-batch of ``batch`` samples.

        The activation-linked metrics (FLOPs, Inputs, Outputs, activation
        footprint) scale *exactly* linearly with the batch size — the
        property ConvMeter's ``b·(c1·F + c2·I + c3·O)`` regression relies
        on — while weights and layer count are batch-invariant.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return CostSummary(
            flops=self.flops * batch,
            conv_input_elems=self.conv_input_elems * batch,
            conv_output_elems=self.conv_output_elems * batch,
            weights=self.weights,
            layers=self.layers,
            total_output_elems=self.total_output_elems * batch,
        )


def node_cost(graph: ComputeGraph, node: Node) -> LayerCost:
    """Cost record for one node."""
    from repro.graph.layers import Conv2d

    in_shapes = graph.input_shapes(node)
    out_shape = node.output_shape
    layer = node.layer
    conv_groups = 1
    is_depthwise = False
    is_pointwise = False
    if isinstance(layer, Conv2d):
        conv_groups = layer.groups
        is_depthwise = layer.is_depthwise
        kh, kw = (
            layer.kernel_size
            if isinstance(layer.kernel_size, tuple)
            else (layer.kernel_size, layer.kernel_size)
        )
        is_pointwise = kh == 1 and kw == 1
    return LayerCost(
        name=node.name,
        layer_type=type(layer).__name__,
        block=node.block,
        flops=layer.flops(in_shapes, out_shape),
        input_elems=sum(s.numel for s in in_shapes),
        output_elems=out_shape.numel,
        params=layer.param_count(),
        is_conv=layer.is_conv,
        conv_groups=conv_groups,
        is_depthwise=is_depthwise,
        is_pointwise=is_pointwise,
    )


def graph_costs(graph: ComputeGraph) -> list[LayerCost]:
    """Per-layer costs in topological order, skipping input placeholders."""
    return [
        node_cost(graph, node)
        for node in graph
        if not isinstance(node.layer, Input)
    ]


def summarize_costs(graph: ComputeGraph) -> CostSummary:
    """Aggregate a graph's per-layer costs into ConvMeter's metric vector."""
    costs = graph_costs(graph)
    return CostSummary(
        flops=sum(c.flops for c in costs),
        conv_input_elems=sum(c.input_elems for c in costs if c.is_conv),
        conv_output_elems=sum(c.output_elems for c in costs if c.is_conv),
        weights=graph.parameter_count(),
        layers=graph.parametric_layer_count(),
        total_output_elems=sum(c.output_elems for c in costs),
    )
