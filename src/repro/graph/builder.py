"""Fluent construction API for ConvNet graphs.

The model zoo builds every architecture through this class.  Handles are
plain node-name strings; the builder tracks shapes as it goes so layer
parameters that are derivable (for example a convolution's input channel
count) never have to be repeated, which keeps the zoo definitions close to
their torchvision counterparts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.graph.graph import ComputeGraph, Node
from repro.graph.layers import (
    Activation,
    AdaptiveAvgPool2d,
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Input,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    Multiply,
)
from repro.graph.tensor import TensorShape


class GraphBuilder:
    """Incrementally builds a :class:`ComputeGraph` in topological order."""

    def __init__(self, name: str) -> None:
        self.graph = ComputeGraph(name)
        self._counters: dict[str, int] = {}
        self._scopes: list[str] = []

    # -- infrastructure ------------------------------------------------------

    def _fresh_name(self, kind: str) -> str:
        idx = self._counters.get(kind, 0)
        self._counters[kind] = idx + 1
        return f"{kind}_{idx}"

    @property
    def _scope(self) -> str:
        return ".".join(self._scopes)

    @contextmanager
    def block(self, scope: str) -> Iterator[None]:
        """Tag all layers added inside the context with a block scope."""
        self._scopes.append(scope)
        try:
            yield
        finally:
            self._scopes.pop()

    def add_layer(self, layer: Layer, *inputs: str, name: str | None = None) -> str:
        """Append a layer consuming the given handles; returns its handle."""
        node_name = name or self._fresh_name(type(layer).__name__.lower())
        shapes = [self.graph.node(p).output_shape for p in inputs]
        out_shape = layer.infer_shape(shapes)
        self.graph.add_node(
            Node(node_name, layer, tuple(inputs), out_shape, block=self._scope)
        )
        return node_name

    def shape(self, handle: str) -> TensorShape:
        """Resolved per-sample shape of a handle."""
        return self.graph.node(handle).output_shape

    def channels(self, handle: str) -> int:
        return self.shape(handle).channels

    def finish(self, validate: bool = True) -> ComputeGraph:
        if validate:
            self.graph.validate()
        return self.graph

    # -- layer shorthands ------------------------------------------------------

    def input(self, channels: int, height: int, width: int) -> str:
        shape = TensorShape(channels, height, width)
        return self.add_layer(Input(shape))

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        groups: int = 1,
        dilation: int = 1,
        bias: bool = True,
    ) -> str:
        layer = Conv2d(
            in_channels=self.channels(x),
            out_channels=out_channels,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            dilation=dilation,
            bias=bias,
        )
        return self.add_layer(layer, x)

    def bn(self, x: str) -> str:
        return self.add_layer(BatchNorm2d(self.channels(x)), x)

    def act(self, x: str, kind: str = "relu") -> str:
        return self.add_layer(Activation(kind), x)

    def relu(self, x: str) -> str:
        return self.act(x, "relu")

    def conv_bn_act(
        self,
        x: str,
        out_channels: int,
        kernel_size: int | tuple[int, int] = 3,
        stride: int | tuple[int, int] = 1,
        padding: int | tuple[int, int] = 0,
        groups: int = 1,
        act: str | None = "relu",
    ) -> str:
        """The conv → batch-norm → activation idiom used by most modern nets."""
        x = self.conv(
            x,
            out_channels,
            kernel_size=kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
        )
        x = self.bn(x)
        if act is not None:
            x = self.act(x, act)
        return x

    def maxpool(
        self,
        x: str,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
        ceil_mode: bool = False,
    ) -> str:
        return self.add_layer(
            MaxPool2d(kernel_size, stride, padding, ceil_mode), x
        )

    def avgpool(
        self,
        x: str,
        kernel_size: int | tuple[int, int],
        stride: int | tuple[int, int] | None = None,
        padding: int | tuple[int, int] = 0,
        ceil_mode: bool = False,
    ) -> str:
        return self.add_layer(
            AvgPool2d(kernel_size, stride, padding, ceil_mode), x
        )

    def adaptive_avgpool(self, x: str, output_size: int | tuple[int, int] = 1) -> str:
        return self.add_layer(AdaptiveAvgPool2d(output_size), x)

    def global_avgpool(self, x: str) -> str:
        return self.add_layer(GlobalAvgPool2d(), x)

    def linear(self, x: str, out_features: int, bias: bool = True) -> str:
        return self.add_layer(
            Linear(self.channels(x), out_features, bias=bias), x
        )

    def flatten(self, x: str) -> str:
        return self.add_layer(Flatten(), x)

    def dropout(self, x: str, p: float = 0.5) -> str:
        return self.add_layer(Dropout(p), x)

    def add(self, *xs: str) -> str:
        return self.add_layer(Add(), *xs)

    def concat(self, *xs: str) -> str:
        return self.add_layer(Concat(), *xs)

    def multiply(self, a: str, b: str) -> str:
        return self.add_layer(Multiply(), a, b)

    def lrn(self, x: str, size: int = 5) -> str:
        return self.add_layer(LocalResponseNorm(size), x)

    # -- composite idioms --------------------------------------------------

    def squeeze_excite(
        self,
        x: str,
        squeeze_channels: int,
        gate: str = "sigmoid",
        act: str = "relu",
    ) -> str:
        """Squeeze-and-excitation: global pool → 1x1 reduce → 1x1 expand → scale."""
        channels = self.channels(x)
        s = self.global_avgpool(x)
        s = self.conv(s, squeeze_channels, kernel_size=1)
        s = self.act(s, act)
        s = self.conv(s, channels, kernel_size=1)
        s = self.act(s, gate)
        return self.multiply(x, s)

    def classifier(self, x: str, num_classes: int, dropout: float | None = None) -> str:
        """Global average pool → flatten → (dropout) → linear head."""
        x = self.adaptive_avgpool(x, 1)
        x = self.flatten(x)
        if dropout is not None:
            x = self.dropout(x, dropout)
        return self.linear(x, num_classes)
