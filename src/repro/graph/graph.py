"""DAG container for ConvNet computational graphs.

Nodes are inserted in topological order by :class:`~repro.graph.builder.
GraphBuilder`; the graph stores resolved per-sample output shapes so every
metric query is a cheap lookup rather than a re-inference.

Blocks — the repeating units the paper predicts in Section 4.1.2 — are
recorded as hierarchical scope strings on each node (for example
``"layer1.0"``), and :meth:`ComputeGraph.block_subgraph` extracts a block as
a standalone graph so the same performance model applies unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

from repro.graph.layers import Input, Layer
from repro.graph.tensor import TensorShape


@dataclass(frozen=True)
class Node:
    """A single layer instance in the graph."""

    name: str
    layer: Layer
    inputs: tuple[str, ...]
    output_shape: TensorShape
    block: str = ""

    def in_block(self, scope: str) -> bool:
        """True if this node lives in ``scope`` or a nested scope of it."""
        return self.block == scope or self.block.startswith(scope + ".")


class ComputeGraph:
    """An immutable-after-construction DAG of layers in topological order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._order: list[str] = []
        self._fingerprint: str | None = None

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Append a node; all of its inputs must already be present."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r} in {self.name}")
        for parent in node.inputs:
            if parent not in self._nodes:
                raise ValueError(
                    f"node {node.name!r} references unknown input {parent!r}"
                )
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Stable content hash of the graph: name, node order, layer
        configurations, wiring, shapes, and block scopes.

        Two graphs with equal fingerprints are structurally identical, so
        a deterministic pass pipeline rewrites them identically — the
        cache key :data:`repro.graph.passes.PIPELINE_CACHE` relies on.
        Layer configurations enter through their dataclass ``repr``, which
        covers every cost-relevant field.  Cached until the next
        :meth:`add_node`.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self.name.encode())
            for name in self._order:
                node = self._nodes[name]
                h.update(
                    "\x1f".join(
                        (
                            node.name,
                            repr(node.layer),
                            "\x1e".join(node.inputs),
                            repr(node.output_shape),
                            node.block,
                        )
                    ).encode()
                )
                h.update(b"\x00")
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[Node]:
        for name in self._order:
            yield self._nodes[name]

    def node(self, name: str) -> Node:
        return self._nodes[name]

    @property
    def nodes(self) -> list[Node]:
        return [self._nodes[n] for n in self._order]

    @property
    def input_nodes(self) -> list[Node]:
        return [n for n in self if isinstance(n.layer, Input)]

    @property
    def output_node(self) -> Node:
        """The unique sink of the graph (no node consumes it)."""
        consumed = {parent for n in self for parent in n.inputs}
        sinks = [n for n in self if n.name not in consumed]
        if len(sinks) != 1:
            raise ValueError(
                f"graph {self.name!r} has {len(sinks)} sinks; expected exactly 1"
            )
        return sinks[0]

    def input_shapes(self, node: Node) -> list[TensorShape]:
        """Resolved per-sample shapes of a node's inputs."""
        return [self._nodes[p].output_shape for p in node.inputs]

    def successors(self, name: str) -> list[Node]:
        return [n for n in self if name in n.inputs]

    # -- traversals --------------------------------------------------------

    def topological_order(self) -> list[Node]:
        """Nodes in dependency order, recomputed from the edges.

        Unlike iterating the graph (which trusts insertion order), this is
        a Kahn walk over the actual edge set, with ties broken by insertion
        order so the result is deterministic.  It is the one traversal the
        shape reporter, the verifier, and the pass framework all share.
        Raises :class:`ValueError` when the edges admit no schedule (a
        cycle or an unknown input reference).
        """
        indegree = {name: 0 for name in self._order}
        for node in self:
            for parent in node.inputs:
                if parent not in indegree:
                    raise ValueError(
                        f"node {node.name!r} references unknown input "
                        f"{parent!r}"
                    )
                indegree[node.name] += 1
        ready = [name for name in self._order if indegree[name] == 0]
        ordered: list[Node] = []
        while ready:
            # Pop the earliest-inserted ready node: deterministic, and on
            # well-formed graphs it reproduces the insertion order exactly.
            name = ready.pop(0)
            ordered.append(self._nodes[name])
            for succ in self.successors(name):
                indegree[succ.name] -= 1
                if indegree[succ.name] == 0:
                    ready.append(succ.name)
        if len(ordered) != len(self._order):
            stuck = sorted(set(self._order) - {n.name for n in ordered})
            raise ValueError(
                f"graph {self.name!r} has no topological order; nodes "
                f"{stuck} sit on a cycle"
            )
        return ordered

    def reachable_from_sink(self) -> set[str]:
        """Names of nodes the sink transitively reads (itself included).

        The sink is the last node in topological order — the graph's output
        by construction.  Everything outside this set is dead weight: its
        FLOPs and parameters still land in the metric vector, which is
        exactly what verify's IR002 and the ``EliminateDeadLayers`` pass
        use this walk to find.
        """
        if not self._order:
            return set()
        stack = [self._order[-1]]
        seen: set[str] = set()
        while stack:
            name = stack.pop()
            if name in seen or name not in self._nodes:
                continue  # unknown refs are IR003's finding, not ours
            seen.add(name)
            stack.extend(self._nodes[name].inputs)
        return seen

    # -- blocks ------------------------------------------------------------

    def block_names(self) -> list[str]:
        """Block scopes in first-appearance order."""
        seen: dict[str, None] = {}
        for node in self:
            if node.block:
                seen.setdefault(node.block, None)
        return list(seen)

    def block_nodes(self, scope: str) -> list[Node]:
        nodes = [n for n in self if n.in_block(scope)]
        if not nodes:
            raise KeyError(f"no nodes in block scope {scope!r} of {self.name}")
        return nodes

    def block_subgraph(self, scope: str) -> "ComputeGraph":
        """Extract a block as a standalone graph.

        Edges crossing into the block are replaced with fresh ``Input``
        placeholder nodes carrying the producer's shape, so the block is a
        well-formed small network of its own — the property the paper relies
        on for block-wise prediction ("blocks are small neural networks
        themselves").
        """
        members = {n.name for n in self.block_nodes(scope)}
        sub = ComputeGraph(f"{self.name}/{scope}")
        placeholder_of: dict[str, str] = {}
        for node in self:
            if node.name not in members:
                continue
            inputs: list[str] = []
            for parent in node.inputs:
                if parent in members:
                    inputs.append(parent)
                    continue
                if parent not in placeholder_of:
                    ph_name = f"__input_{len(placeholder_of)}"
                    shape = self._nodes[parent].output_shape
                    sub.add_node(
                        Node(ph_name, Input(shape), (), shape, block="")
                    )
                    placeholder_of[parent] = ph_name
                inputs.append(placeholder_of[parent])
            sub.add_node(
                Node(node.name, node.layer, tuple(inputs), node.output_shape, "")
            )
        return sub

    # -- aggregate metrics ---------------------------------------------------

    def validate(self) -> None:
        """Re-run shape inference on every node and check stored shapes."""
        for node in self:
            inferred = node.layer.infer_shape(self.input_shapes(node))
            if inferred != node.output_shape:
                raise ValueError(
                    f"stored shape {node.output_shape} of {node.name!r} does not "
                    f"match inferred {inferred}"
                )

    def parameter_count(self) -> int:
        """Total learnable parameters (the paper's Weights metric W)."""
        return sum(n.layer.param_count() for n in self)

    def parametric_layer_count(self) -> int:
        """Number of layers owning parameters (the paper's Layers metric L).

        Horovod synchronises gradients per parameter tensor, so the natural
        realisation of "number of layers" for the gradient-update model is
        the count of layers that actually produce gradients.
        """
        return sum(1 for n in self if n.layer.has_params)

    def conv_nodes(self) -> list[Node]:
        return [n for n in self if n.layer.is_conv]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComputeGraph({self.name!r}, {len(self)} nodes)"


def sequential_shapes(graph: ComputeGraph) -> list[tuple[str, TensorShape]]:
    """(name, shape) pairs in topological order — a debugging/report helper.

    Recomputes the order from the edge set via
    :meth:`ComputeGraph.topological_order`, so the report stays honest even
    for graphs whose insertion order was corrupted.
    """
    return [(n.name, n.output_shape) for n in graph.topological_order()]


def check_same_topology(a: ComputeGraph, b: ComputeGraph) -> bool:
    """True when two graphs share layer sequence and wiring (ignoring names)."""
    if len(a) != len(b):
        return False
    index_a = {n.name: i for i, n in enumerate(a)}
    index_b = {n.name: i for i, n in enumerate(b)}
    for na, nb in zip(a, b):
        if type(na.layer) is not type(nb.layer):
            return False
        if tuple(index_a[p] for p in na.inputs) != tuple(
            index_b[p] for p in nb.inputs
        ):
            return False
    return True


__all__ = [
    "Node",
    "ComputeGraph",
    "sequential_shapes",
    "check_same_topology",
]
