"""ConvNet intermediate representation.

This package provides the computational-graph substrate that ConvMeter
consumes: a small layer taxonomy with shape inference, a DAG container with
block scoping, per-layer cost metrics (FLOPs, input/output tensor sizes,
parameter counts), and a numerical reference executor used to validate the
shape and FLOP accounting against actual array computation.
"""

from repro.graph.tensor import TensorShape
from repro.graph.layers import (
    Activation,
    AdaptiveAvgPool2d,
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    FusedConv2d,
    FusedLinear,
    GlobalAvgPool2d,
    Input,
    Layer,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    Multiply,
    ZeroPad2d,
)
from repro.graph.graph import ComputeGraph, Node
from repro.graph.builder import GraphBuilder
from repro.graph.metrics import LayerCost, graph_costs, summarize_costs
from repro.graph.passes import (
    PassPipeline,
    PassResult,
    PipelineResult,
    build_pipeline,
    default_inference_pipeline,
    resolve_transform,
)

__all__ = [
    "TensorShape",
    "Layer",
    "Input",
    "Conv2d",
    "FusedConv2d",
    "FusedLinear",
    "BatchNorm2d",
    "Activation",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "GlobalAvgPool2d",
    "Linear",
    "Flatten",
    "Dropout",
    "Add",
    "Concat",
    "Multiply",
    "LocalResponseNorm",
    "ZeroPad2d",
    "ComputeGraph",
    "Node",
    "GraphBuilder",
    "LayerCost",
    "graph_costs",
    "summarize_costs",
    "PassPipeline",
    "PassResult",
    "PipelineResult",
    "build_pipeline",
    "default_inference_pipeline",
    "resolve_transform",
]
