"""Graph export: Graphviz DOT rendering of a ComputeGraph.

Visual inspection tooling: blocks become clusters, layer nodes show type
and output shape, so an architecture (or an extracted block subgraph) can
be rendered with any DOT viewer.
"""

from __future__ import annotations

from repro.graph.graph import ComputeGraph
from repro.graph.layers import Input

_TYPE_COLORS = {
    "Conv2d": "lightblue",
    "TokenLinear": "lightblue",
    "Linear": "lightyellow",
    "ScaledDotProductAttention": "plum",
    "BatchNorm2d": "lightgrey",
    "LayerNorm": "lightgrey",
    "Add": "palegreen",
    "Concat": "palegreen",
    "Multiply": "palegreen",
    "Input": "white",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(graph: ComputeGraph, include_shapes: bool = True) -> str:
    """Render the graph as a Graphviz DOT document."""
    lines = [
        f'digraph "{_escape(graph.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    # Group nodes by block scope into clusters.
    by_block: dict[str, list] = {}
    for node in graph:
        by_block.setdefault(node.block, []).append(node)

    def node_line(node) -> str:
        type_name = type(node.layer).__name__
        label = type_name if isinstance(node.layer, Input) else node.name
        if include_shapes:
            label += f"\\n{type_name} {node.output_shape}"
        color = _TYPE_COLORS.get(type_name, "white")
        return (
            f'    "{_escape(node.name)}" '
            f'[label="{_escape(label)}", fillcolor={color}];'
        )

    cluster_idx = 0
    for block, nodes in by_block.items():
        if block:
            lines.append(f"  subgraph cluster_{cluster_idx} {{")
            lines.append(f'    label="{_escape(block)}";')
            lines.extend(node_line(n) for n in nodes)
            lines.append("  }")
            cluster_idx += 1
        else:
            lines.extend(node_line(n) for n in nodes)

    for node in graph:
        for parent in node.inputs:
            lines.append(
                f'  "{_escape(parent)}" -> "{_escape(node.name)}";'
            )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: ComputeGraph, path) -> None:
    """Write the DOT document to a file."""
    from pathlib import Path

    Path(path).write_text(to_dot(graph))
