"""Numerical backward pass for the ConvNet IR.

Extends the reference executor with vector-Jacobian products for every
ConvNet layer, so the substrate can really *train*: the data-parallel
training demo computes gradients per simulated worker, synchronises them
with the executable ring all-reduce, and applies SGD — validating the cost
model's structural assumptions (backward ≈ double the forward work,
gradients produced in reverse topological order, one tensor per
parametric layer) against actual computation.

Batch-norm runs in inference mode (affine with fixed statistics), which
keeps its backward exact and local — sufficient for substrate validation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import ComputeGraph
from repro.graph.layers import (
    Activation,
    AdaptiveAvgPool2d,
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Input,
    Linear,
    MaxPool2d,
    Multiply,
    ZeroPad2d,
)
from repro.graph.reference import ReferenceExecutor, _pair, im2col
from repro.graph.transformer_layers import (
    ClassToken,
    LayerNorm,
    PositionalEmbedding,
    ScaledDotProductAttention,
    SelectToken,
    TokenLinear,
    TokensFromFeatureMap,
)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    dilation: int = 1,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch columns back."""
    b, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    eff_kh = dilation * (kh - 1) + 1
    eff_kw = dilation * (kw - 1) + 1
    out_h = (h + 2 * ph - eff_kh) // sh + 1
    out_w = (w + 2 * pw - eff_kw) // sw + 1
    cols = cols.reshape(b, c, kh, kw, out_h, out_w)
    padded = np.zeros((b, c, h + 2 * ph, w + 2 * pw))
    for i in range(kh):
        for j in range(kw):
            hi = i * dilation
            wj = j * dilation
            padded[
                :, :, hi : hi + sh * out_h : sh, wj : wj + sw * out_w : sw
            ] += cols[:, :, i, j]
    return padded[:, :, ph : ph + h, pw : pw + w]


def _gelu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # Derivative of the tanh-approximated GELU used by the forward pass.
    c = 0.7978845608
    inner = c * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    dinner = c * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner


_ACT_GRADS = {
    "gelu": _gelu_grad,
    "relu": lambda x, y: (x > 0).astype(float),
    "relu6": lambda x, y: ((x > 0) & (x < 6)).astype(float),
    "leaky_relu": lambda x, y: np.where(x > 0, 1.0, 0.01),
    "sigmoid": lambda x, y: y * (1.0 - y),
    "tanh": lambda x, y: 1.0 - y * y,
    "silu": lambda x, y: (
        (lambda s: s * (1.0 + x * (1.0 - s)))(1.0 / (1.0 + np.exp(-x)))
    ),
    "hardsigmoid": lambda x, y: ((x > -3.0) & (x < 3.0)) / 6.0,
    "hardswish": lambda x, y: np.where(
        x <= -3.0, 0.0, np.where(x >= 3.0, 1.0, (2.0 * x + 3.0) / 6.0)
    ),
}


class TrainableExecutor(ReferenceExecutor):
    """Reference executor with a numerical backward pass and SGD."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass caching every intermediate value."""
        inputs = self.graph.input_nodes
        if len(inputs) != 1:
            raise ValueError("TrainableExecutor supports single-input graphs")
        self._values: dict[str, np.ndarray] = {}
        self._run_from({inputs[0].name: x}, self._values)
        return self._values[self.graph.output_node.name]

    def backward(
        self, output_grad: np.ndarray
    ) -> dict[str, dict[str, np.ndarray]]:
        """Backward pass from the output gradient.

        Returns per-node parameter gradients (``{node: {param: grad}}``),
        produced in reverse topological order — the order the distributed
        trainer's fusion buckets consume.
        """
        if not hasattr(self, "_values"):
            raise RuntimeError("call forward() before backward()")
        grads: dict[str, np.ndarray] = {
            self.graph.output_node.name: np.asarray(output_grad, float)
        }
        param_grads: dict[str, dict[str, np.ndarray]] = {}
        for node in reversed(self.graph.nodes):
            if isinstance(node.layer, Input):
                continue
            gy = grads.pop(node.name, None)
            if gy is None:
                continue  # dead branch
            args = [self._values[p] for p in node.inputs]
            y = self._values[node.name]
            gxs, pgrads = self._vjp(node.name, node.layer, args, y, gy)
            if pgrads:
                param_grads[node.name] = pgrads
            for parent, gx in zip(node.inputs, gxs):
                if gx is None:
                    continue
                if parent in grads:
                    grads[parent] = grads[parent] + gx
                else:
                    grads[parent] = gx
        self._input_grads = grads
        return param_grads

    def input_gradient(self) -> np.ndarray:
        """Gradient with respect to the graph input (after backward())."""
        (input_node,) = self.graph.input_nodes
        return self._input_grads[input_node.name]

    def sgd_step(
        self, param_grads: dict[str, dict[str, np.ndarray]], lr: float
    ) -> None:
        """In-place SGD update of the executor's parameters."""
        for node_name, grads in param_grads.items():
            for key, grad in grads.items():
                self.params[node_name][key] -= lr * grad

    # -- per-layer VJPs ------------------------------------------------------

    def _vjp(
        self,
        name: str,
        layer: object,
        args: list[np.ndarray],
        y: np.ndarray,
        gy: np.ndarray,
    ) -> tuple[list[np.ndarray | None], dict[str, np.ndarray]]:
        if isinstance(layer, Conv2d):
            return self._conv_vjp(name, layer, args[0], gy)
        if isinstance(layer, Linear):
            p = self.params[name]
            gw = gy.T @ args[0]
            gx = gy @ p["weight"]
            pg = {"weight": gw}
            if "bias" in p:
                pg["bias"] = gy.sum(axis=0)
            return [gx], pg
        if isinstance(layer, BatchNorm2d):
            p = self.params[name]
            inv = 1.0 / np.sqrt(p["var"] + 1e-5)
            normed = (args[0] - p["mean"][None, :, None, None]) * inv[
                None, :, None, None
            ]
            gx = gy * (p["gamma"] * inv)[None, :, None, None]
            return [gx], {
                "gamma": (gy * normed).sum(axis=(0, 2, 3)),
                "beta": gy.sum(axis=(0, 2, 3)),
            }
        if isinstance(layer, Activation):
            try:
                dfn = _ACT_GRADS[layer.kind]
            except KeyError:
                raise NotImplementedError(
                    f"no backward for activation {layer.kind!r}"
                ) from None
            return [gy * dfn(args[0], y)], {}
        if isinstance(layer, MaxPool2d):
            return [self._maxpool_vjp(layer, args[0], y, gy)], {}
        if isinstance(layer, AvgPool2d):
            return [self._avgpool_vjp(layer, args[0], gy)], {}
        if isinstance(layer, AdaptiveAvgPool2d):
            return [self._adaptive_vjp(layer, args[0], gy)], {}
        if isinstance(layer, GlobalAvgPool2d):
            b, c, h, w = args[0].shape
            return [np.broadcast_to(gy / (h * w), args[0].shape).copy()], {}
        if isinstance(layer, Flatten):
            return [gy.reshape(args[0].shape)], {}
        if isinstance(layer, Dropout):
            return [gy], {}
        if isinstance(layer, Add):
            return [gy for _ in args], {}
        if isinstance(layer, Concat):
            splits = np.cumsum([a.shape[1] for a in args[:-1]])
            return list(np.split(gy, splits, axis=1)), {}
        if isinstance(layer, Multiply):
            a, b = args

            def reduce_to(shape, grad):
                # Sum out spatial dims that were broadcast in the forward.
                if grad.shape != shape:
                    grad = grad.sum(axis=(2, 3), keepdims=True)
                return grad

            ga = reduce_to(a.shape, gy * b)
            gb = reduce_to(b.shape, gy * a)
            return [ga, gb], {}
        if isinstance(layer, ZeroPad2d):
            ph, pw = _pair(layer.padding)
            return [gy[:, :, ph : gy.shape[2] - ph, pw : gy.shape[3] - pw]], {}
        if isinstance(layer, TokenLinear):
            p = self.params[name]
            x = args[0][..., 0]          # (B, d_in, S)
            g = gy[..., 0]               # (B, d_out, S)
            gw = np.einsum("bos,bis->oi", g, x)
            gx = np.einsum("oi,bos->bis", p["weight"], g)[..., None]
            pg = {"weight": gw}
            if "bias" in p:
                pg["bias"] = g.sum(axis=(0, 2))
            return [gx], pg
        if isinstance(layer, LayerNorm):
            return self._layernorm_vjp(name, args[0], gy)
        if isinstance(layer, ScaledDotProductAttention):
            return self._attention_vjp(layer, args, gy), {}
        if isinstance(layer, ClassToken):
            token_grad = gy[:, :, 0, :].sum(axis=(0, 2))
            return [gy[:, :, 1:, :]], {"token": token_grad}
        if isinstance(layer, PositionalEmbedding):
            return [gy], {"embed": gy.sum(axis=(0, 3))}
        if isinstance(layer, TokensFromFeatureMap):
            return [gy.reshape(args[0].shape)], {}
        if isinstance(layer, SelectToken):
            gx = np.zeros_like(args[0])
            gx[:, :, layer.index, 0] = gy
            return [gx], {}
        raise NotImplementedError(
            f"no backward implementation for {type(layer).__name__}"
        )

    def _layernorm_vjp(self, name, x, gy):
        p = self.params[name]
        d = x.shape[1]
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        inv = 1.0 / np.sqrt(var + 1e-6)
        normed = (x - mean) * inv
        gamma = p["gamma"][None, :, None, None]
        gn = gy * gamma
        # Standard layer-norm backward over the channel axis.
        gx = inv * (
            gn
            - gn.mean(axis=1, keepdims=True)
            - normed * (gn * normed).mean(axis=1, keepdims=True)
        )
        return [gx], {
            "gamma": (gy * normed).sum(axis=(0, 2, 3)),
            "beta": gy.sum(axis=(0, 2, 3)),
        }

    def _attention_vjp(self, layer, args, gy):
        q, k, v = (a[..., 0] for a in args)
        b, d, s = q.shape
        h = layer.num_heads
        dh = d // h
        qh = q.reshape(b, h, dh, s)
        kh = k.reshape(b, h, dh, s)
        vh = v.reshape(b, h, dh, s)
        scale = 1.0 / np.sqrt(dh)
        scores = np.einsum("bhdi,bhdj->bhij", qh, kh) * scale
        scores -= scores.max(axis=-1, keepdims=True)
        attn = np.exp(scores)
        attn /= attn.sum(axis=-1, keepdims=True)

        g = gy[..., 0].reshape(b, h, dh, s)
        # out[:, :, d, i] = sum_j attn[i, j] * v[d, j]
        gv = np.einsum("bhij,bhdi->bhdj", attn, g)
        gattn = np.einsum("bhdi,bhdj->bhij", g, vh)
        # Softmax backward per row.
        gscores = attn * (
            gattn - (gattn * attn).sum(axis=-1, keepdims=True)
        )
        gq = np.einsum("bhij,bhdj->bhdi", gscores, kh) * scale
        gk = np.einsum("bhij,bhdi->bhdj", gscores, qh) * scale
        return [
            gq.reshape(b, d, s)[..., None],
            gk.reshape(b, d, s)[..., None],
            gv.reshape(b, d, s)[..., None],
        ]

    def _conv_vjp(self, name, layer, x, gy):
        p = self.params[name]
        weight = p["weight"]
        kh, kw = _pair(layer.kernel_size)
        sh, sw = _pair(layer.stride)
        ph, pw = _pair(layer.padding)
        g = layer.groups
        cin_g = layer.in_channels // g
        cout_g = layer.out_channels // g
        b = x.shape[0]
        out_h, out_w = gy.shape[2], gy.shape[3]
        gx = np.empty_like(x)
        gw = np.empty_like(weight)
        w_mat = weight.reshape(g, cout_g, cin_g * kh * kw)
        gy_mat = gy.reshape(b, g, cout_g, out_h * out_w)
        for gi in range(g):
            xg = x[:, gi * cin_g : (gi + 1) * cin_g]
            cols = im2col(xg, (kh, kw), (sh, sw), (ph, pw), layer.dilation)
            gyg = gy_mat[:, gi]  # (b, cout_g, L)
            # dW = sum_b gy @ cols^T
            gw_g = np.einsum("bol,bkl->ok", gyg, cols)
            gw[gi * cout_g : (gi + 1) * cout_g] = gw_g.reshape(
                cout_g, cin_g, kh, kw
            )
            # dX: push gradient back through the patch matrix.
            gcols = np.einsum("ok,bol->bkl", w_mat[gi], gyg)
            gx[:, gi * cin_g : (gi + 1) * cin_g] = col2im(
                gcols, xg.shape, (kh, kw), (sh, sw), (ph, pw), layer.dilation
            )
        pg = {"weight": gw}
        if "bias" in p:
            pg["bias"] = gy.sum(axis=(0, 2, 3))
        return [gx], pg

    def _maxpool_vjp(self, layer, x, y, gy):
        kh, kw = _pair(layer.kernel_size)
        stride = layer.stride if layer.stride is not None else layer.kernel_size
        sh, sw = _pair(stride)
        ph, pw = _pair(layer.padding)
        b, c, h, w = x.shape
        padded = np.full((b, c, h + 2 * ph, w + 2 * pw), -np.inf)
        padded[:, :, ph : ph + h, pw : pw + w] = x
        out_h, out_w = y.shape[2], y.shape[3]
        need_h = (out_h - 1) * sh + kh
        need_w = (out_w - 1) * sw + kw
        if need_h > padded.shape[2] or need_w > padded.shape[3]:
            padded = np.pad(
                padded,
                ((0, 0), (0, 0),
                 (0, max(0, need_h - padded.shape[2])),
                 (0, max(0, need_w - padded.shape[3]))),
                constant_values=-np.inf,
            )
        gpad = np.zeros_like(padded)
        # Route each window's gradient to its argmax element.  Exact ties
        # within a window would double-count, but are measure-zero for the
        # continuous inputs this executor is validated with.
        for i in range(kh):
            for j in range(kw):
                window = padded[
                    :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
                ]
                gpad[
                    :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
                ] += np.where(window == y, gy, 0.0)
        return gpad[:, :, ph : ph + h, pw : pw + w]

    def _avgpool_vjp(self, layer, x, gy):
        kh, kw = _pair(layer.kernel_size)
        stride = layer.stride if layer.stride is not None else layer.kernel_size
        sh, sw = _pair(stride)
        ph, pw = _pair(layer.padding)
        b, c, h, w = x.shape
        out_h, out_w = gy.shape[2], gy.shape[3]
        need_h = max(h + 2 * ph, (out_h - 1) * sh + kh)
        need_w = max(w + 2 * pw, (out_w - 1) * sw + kw)
        gpad = np.zeros((b, c, need_h, need_w))
        share = gy / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                gpad[
                    :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
                ] += share
        return gpad[:, :, ph : ph + h, pw : pw + w]

    def _adaptive_vjp(self, layer, x, gy):
        b, c, h, w = x.shape
        oh, ow = _pair(layer.output_size)
        gx = np.zeros_like(x)
        for i in range(oh):
            h0, h1 = (i * h) // oh, -(-((i + 1) * h) // oh)
            for j in range(ow):
                w0, w1 = (j * w) // ow, -(-((j + 1) * w) // ow)
                area = (h1 - h0) * (w1 - w0)
                gx[:, :, h0:h1, w0:w1] += (
                    gy[:, :, i : i + 1, j : j + 1] / area
                )
        return gx


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Loss and logits gradient for integer labels — the training demo's
    loss function."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = -float(np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n
