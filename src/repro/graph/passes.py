"""Deterministic graph transformation passes.

Every deployed inference stack rewrites a ConvNet's graph before running it
— folding BatchNorm into the preceding convolution and fusing elementwise
activations into the producing kernel — so the graph a profiler should cost
is the *optimized* one, not the one the model builder emitted.  This module
is the seam between construction and costing: a small pass framework
(:class:`Pass` protocol, :class:`PassPipeline`) plus the four rewrites the
fused-inference workload needs.

Design rules, in force for every pass:

* **Pure and deterministic.**  A pass never mutates its input graph; it
  rebuilds a new :class:`~repro.graph.graph.ComputeGraph` by walking
  :meth:`~repro.graph.graph.ComputeGraph.topological_order`.  Running a
  pipeline twice yields structurally identical graphs (idempotence is
  asserted by the equivalence test suite).
* **Conservation-accounted.**  Rewrites that merge layers use the
  :class:`~repro.graph.layers.FusedConv2d` / ``FusedLinear`` layer types,
  whose accounting keeps the paper's Weights metric and the convolution
  FLOPs exactly conserved — the invariant
  :func:`repro.analysis.verify.verify_transform` checks.
* **Fingerprinted.**  A pipeline has a stable content fingerprint over its
  pass names and configurations, used as part of the profile cache key in
  :func:`repro.hardware.roofline.zoo_profile` so fused and raw profiles
  never collide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import ClassVar, Iterable, Protocol, Sequence, runtime_checkable

from repro.caching import LRUCache
from repro.graph.graph import ComputeGraph, Node
from repro.graph.layers import (
    Activation,
    BatchNorm2d,
    Conv2d,
    FusedConv2d,
    FusedLinear,
    Linear,
)

#: Activation kinds cheap enough for real frameworks to absorb into the
#: producing kernel's epilogue (cuDNN/oneDNN fuse exactly these clamp-style
#: kinds; transcendental activations stay separate kernels).
FUSABLE_ACTIVATIONS = frozenset({"relu", "relu6", "hardswish"})


@runtime_checkable
class Pass(Protocol):
    """Structural interface of one graph rewrite."""

    name: ClassVar[str]

    def run(self, graph: ComputeGraph) -> "tuple[ComputeGraph, PassResult]":
        """Return the rewritten graph and what changed; never mutate."""
        ...  # pragma: no cover - protocol body

    def signature(self) -> dict:
        """JSON-serialisable configuration, hashed into the fingerprint."""
        ...  # pragma: no cover - protocol body


@dataclass(frozen=True)
class PassResult:
    """What one pass did to one graph."""

    #: Registry name of the pass that produced this result.
    pass_name: str
    #: Number of rewrites applied (0 means the pass was a no-op).
    changed: int
    #: Node count before and after — dead-code elimination shrinks, fusion
    #: merges, canonicalisation keeps the count.
    nodes_before: int
    nodes_after: int
    #: New node name -> the names it was built from in the pass's *input*
    #: graph.  Only non-trivial entries (renames and merges) are recorded.
    mapping: dict[str, tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )
    #: Nodes dropped without a successor in the output graph.
    removed: tuple[str, ...] = ()


@dataclass(frozen=True)
class PipelineResult:
    """A transformed graph plus the full provenance of the rewrite."""

    graph: ComputeGraph
    results: tuple[PassResult, ...]
    #: Final node name -> constituent node names of the *original* graph,
    #: for every surviving node (identity entries included).
    origin: dict[str, tuple[str, ...]]

    @property
    def n_changed(self) -> int:
        return sum(r.changed for r in self.results)

    def renames(self) -> dict[str, tuple[str, ...]]:
        """Only the nodes whose provenance is non-trivial — the folded/fused
        layer mapping ``repro transform --diff`` prints."""
        return {
            new: parts
            for new, parts in self.origin.items()
            if parts != (new,)
        }

    def removed(self) -> tuple[str, ...]:
        """All nodes dropped outright, across every pass."""
        return tuple(name for r in self.results for name in r.removed)


class GraphPass:
    """Convenience base class implementing the :class:`Pass` protocol.

    Concrete passes are frozen dataclasses subclassing this, so their
    configuration is hashable, comparable, and feeds ``signature()``
    automatically.
    """

    name: ClassVar[str] = ""

    def run(self, graph: ComputeGraph) -> tuple[ComputeGraph, PassResult]:
        raise NotImplementedError

    def signature(self) -> dict:
        cfg = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)  # type: ignore[arg-type]
            if f.init
        } if dataclasses.is_dataclass(self) else {}
        return {"pass": self.name, **cfg}


def _fused_variant(
    layer: Conv2d | Linear, **updates: object
) -> FusedConv2d | FusedLinear:
    """The fused counterpart of ``layer`` with ``updates`` applied."""
    if isinstance(layer, (FusedConv2d, FusedLinear)):
        return dataclasses.replace(layer, **updates)
    base = FusedConv2d if isinstance(layer, Conv2d) else FusedLinear
    proto = Conv2d if isinstance(layer, Conv2d) else Linear
    fields = {
        f.name: getattr(layer, f.name)
        for f in dataclasses.fields(proto)
        if f.init
    }
    fields.update(updates)
    return base(**fields)  # type: ignore[arg-type]


def _copy(
    out: ComputeGraph, node: Node, renamed: dict[str, str]
) -> None:
    out.add_node(
        Node(
            renamed.get(node.name, node.name),
            node.layer,
            tuple(renamed.get(p, p) for p in node.inputs),
            node.output_shape,
            node.block,
        )
    )


# -- concrete passes ----------------------------------------------------------


@dataclass(frozen=True)
class CanonicalizeShapes(GraphPass):
    """Re-infer every stored shape and normalise node names.

    Zoo-built graphs are already canonical (the builder derives shapes from
    ``Layer.infer_shape`` and emits clean names), so on those this pass is a
    verified no-op; hand-built or deserialised graphs get their stored
    shapes re-derived and names stripped of whitespace and path separators
    before any structural pass pattern-matches on them.
    """

    name: ClassVar[str] = "canonicalize-shapes"

    @staticmethod
    def _canonical(name: str) -> str:
        return name.strip().replace(" ", "_").replace("/", ".")

    def run(self, graph: ComputeGraph) -> tuple[ComputeGraph, PassResult]:
        out = ComputeGraph(graph.name)
        renamed: dict[str, str] = {}
        mapping: dict[str, tuple[str, ...]] = {}
        changed = 0
        for node in graph.topological_order():
            new_name = self._canonical(node.name)
            if new_name != node.name:
                renamed[node.name] = new_name
                mapping[new_name] = (node.name,)
            inputs = tuple(renamed.get(p, p) for p in node.inputs)
            shape = node.layer.infer_shape(
                [out.node(p).output_shape for p in inputs]
            )
            if new_name != node.name or shape != node.output_shape:
                changed += 1
            out.add_node(Node(new_name, node.layer, inputs, shape, node.block))
        return out, PassResult(
            self.name, changed, len(graph), len(out), mapping
        )


@dataclass(frozen=True)
class FoldBatchNorm(GraphPass):
    """Fold inference-mode BatchNorm into the preceding conv/linear layer.

    Matches ``conv -> bn`` (or ``linear -> bn``) where the BatchNorm is the
    producer's *only* consumer, replaces the pair with one
    :class:`~repro.graph.layers.FusedConv2d` / ``FusedLinear`` named
    ``conv_name+bn_name``, and rewires the BatchNorm's consumers onto the
    fused node.  The BatchNorm's elementwise FLOPs disappear (its scale and
    shift are baked into the kernel); its 2·C parameters remain accounted on
    the fused layer, keeping the Weights metric conserved.
    """

    name: ClassVar[str] = "fold-batchnorm"

    @staticmethod
    def _foldable(graph: ComputeGraph, bn: Node) -> Node | None:
        if not isinstance(bn.layer, BatchNorm2d) or len(bn.inputs) != 1:
            return None
        producer = graph.node(bn.inputs[0])
        layer = producer.layer
        if not isinstance(layer, (Conv2d, Linear)):
            return None
        # A layer that already folded a norm, or already applies an
        # activation epilogue, cannot absorb another norm: the affine would
        # land on the wrong side of the nonlinearity.
        if getattr(layer, "bn_features", 0) or getattr(layer, "activation", ""):
            return None
        if len(graph.successors(producer.name)) != 1:
            return None
        return producer

    def run(self, graph: ComputeGraph) -> tuple[ComputeGraph, PassResult]:
        folds: dict[str, Node] = {}  # conv/linear name -> its folded BN node
        for node in graph.topological_order():
            producer = self._foldable(graph, node)
            if producer is not None:
                folds[producer.name] = node
        out = ComputeGraph(graph.name)
        renamed: dict[str, str] = {}
        mapping: dict[str, tuple[str, ...]] = {}
        for node in graph.topological_order():
            if node.name in folds:
                bn = folds[node.name]
                fused_name = f"{node.name}+{bn.name}"
                layer = _fused_variant(
                    node.layer, bn_features=bn.layer.num_features
                )
                out.add_node(
                    Node(
                        fused_name,
                        layer,
                        tuple(renamed.get(p, p) for p in node.inputs),
                        node.output_shape,
                        node.block,
                    )
                )
                renamed[node.name] = fused_name
                renamed[bn.name] = fused_name
                mapping[fused_name] = (node.name, bn.name)
            elif node.name in renamed:
                continue  # a BN absorbed above; consumers follow `renamed`
            else:
                _copy(out, node, renamed)
        return out, PassResult(
            self.name, len(folds), len(graph), len(out), mapping
        )


@dataclass(frozen=True)
class FuseConvActivation(GraphPass):
    """Absorb cheap activations into the producing conv/linear kernel.

    Matches ``conv -> act`` where the activation kind is in
    :data:`FUSABLE_ACTIVATIONS`, the conv is the activation's only input and
    the activation its only consumer, and the producer has no epilogue yet.
    The standalone activation node disappears, which removes its tensor
    round-trip (two activations-worth of memory traffic) from the cost
    model; the clamp arithmetic itself stays on the fused layer's FLOPs.
    Runs after :class:`FoldBatchNorm`, so ``conv -> bn -> relu`` chains end
    as one ``conv+bn+relu`` node — the span name the tracer emits.
    """

    name: ClassVar[str] = "fuse-conv-activation"

    @staticmethod
    def _fusable(graph: ComputeGraph, act: Node) -> Node | None:
        if not isinstance(act.layer, Activation):
            return None
        if act.layer.kind not in FUSABLE_ACTIVATIONS or len(act.inputs) != 1:
            return None
        producer = graph.node(act.inputs[0])
        layer = producer.layer
        if not isinstance(layer, (Conv2d, Linear)):
            return None
        if getattr(layer, "activation", ""):
            return None  # one epilogue per kernel
        if len(graph.successors(producer.name)) != 1:
            return None
        return producer

    def run(self, graph: ComputeGraph) -> tuple[ComputeGraph, PassResult]:
        fuses: dict[str, Node] = {}  # producer name -> its absorbed act node
        for node in graph.topological_order():
            producer = self._fusable(graph, node)
            if producer is not None:
                fuses[producer.name] = node
        out = ComputeGraph(graph.name)
        renamed: dict[str, str] = {}
        mapping: dict[str, tuple[str, ...]] = {}
        for node in graph.topological_order():
            if node.name in fuses:
                act = fuses[node.name]
                fused_name = f"{node.name}+{act.name}"
                layer = _fused_variant(node.layer, activation=act.layer.kind)
                out.add_node(
                    Node(
                        fused_name,
                        layer,
                        tuple(renamed.get(p, p) for p in node.inputs),
                        node.output_shape,
                        node.block,
                    )
                )
                renamed[node.name] = fused_name
                renamed[act.name] = fused_name
                mapping[fused_name] = (node.name, act.name)
            elif node.name in renamed:
                continue  # an absorbed activation; consumers follow `renamed`
            else:
                _copy(out, node, renamed)
        return out, PassResult(
            self.name, len(fuses), len(graph), len(out), mapping
        )


@dataclass(frozen=True)
class EliminateDeadLayers(GraphPass):
    """Drop every node the graph sink does not transitively read.

    Reuses the verifier's reachability walk
    (:meth:`~repro.graph.graph.ComputeGraph.reachable_from_sink`): whatever
    IR002 would flag as dead weight — including dangling ``Input``
    placeholders — is removed, so the costed graph contains exactly the
    work the forward pass performs.
    """

    name: ClassVar[str] = "eliminate-dead-layers"

    def run(self, graph: ComputeGraph) -> tuple[ComputeGraph, PassResult]:
        reachable = graph.reachable_from_sink()
        out = ComputeGraph(graph.name)
        removed: list[str] = []
        for node in graph.topological_order():
            if node.name in reachable:
                _copy(out, node, {})
            else:
                removed.append(node.name)
        return out, PassResult(
            self.name, len(removed), len(graph), len(out),
            removed=tuple(removed),
        )


# -- pipeline -----------------------------------------------------------------


@dataclass(frozen=True)
class PassPipeline:
    """An ordered, named sequence of passes with a content fingerprint."""

    passes: tuple[Pass, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if not self.passes:
            raise ValueError("a PassPipeline needs at least one pass")

    def run(self, graph: ComputeGraph) -> PipelineResult:
        """Apply every pass in order, threading provenance through.

        Memoised in :data:`PIPELINE_CACHE` under the graph and pipeline
        content fingerprints: passes are pure and deterministic, so equal
        fingerprints guarantee an identical result, and the shape
        inference inside each rewrite runs once per distinct
        ``(graph, pipeline)`` pair instead of once per caller.  The cached
        :class:`PipelineResult` (graph included) is shared — callers must
        not mutate it, which the no-mutation pass contract already
        demands.
        """
        key = (graph.fingerprint(), self.fingerprint())
        return PIPELINE_CACHE.get_or_compute(key, lambda: self._run(graph))

    def _run(self, graph: ComputeGraph) -> PipelineResult:
        origin: dict[str, tuple[str, ...]] = {
            node.name: (node.name,) for node in graph
        }
        results: list[PassResult] = []
        for p in self.passes:
            graph, result = p.run(graph)
            results.append(result)
            origin = {
                node.name: tuple(
                    part
                    for prev in result.mapping.get(node.name, (node.name,))
                    for part in origin[prev]
                )
                for node in graph
            }
        return PipelineResult(graph, tuple(results), origin)

    def fingerprint(self) -> str:
        """Stable content hash over pass names and configurations.

        Two pipelines that would rewrite any graph identically share a
        fingerprint; reordering, adding, or reconfiguring passes changes
        it.  Used as the cache-key component that separates fused from raw
        profiles.  Computed once per pipeline instance: the dataclass is
        frozen, so the signature blob can never change after construction.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            blob = json.dumps(
                [p.signature() for p in self.passes], sort_keys=True
            ).encode()
            cached = hashlib.blake2b(blob, digest_size=8).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


#: Bounded memo of :meth:`PassPipeline.run` results, keyed by
#: ``(graph fingerprint, pipeline fingerprint)``.  One campaign (or a serve
#: process answering fused queries) transforms each distinct graph exactly
#: once; every later profile, verification, or what-if pass over the same
#: graph reuses the rewritten result instead of re-running shape inference
#: through the whole pipeline.
PIPELINE_CACHE: LRUCache[tuple[str, str], PipelineResult] = LRUCache(
    maxsize=256
)

#: Constructors of every registered pass, keyed by registry name — the
#: vocabulary of ``repro transform --passes`` and of
#: :class:`~repro.benchdata.engine.CampaignSpec` transform strings.
PASS_REGISTRY: dict[str, type] = {
    CanonicalizeShapes.name: CanonicalizeShapes,
    FoldBatchNorm.name: FoldBatchNorm,
    FuseConvActivation.name: FuseConvActivation,
    EliminateDeadLayers.name: EliminateDeadLayers,
}

#: The default inference-mode rewrite, in dependency order: canonicalise
#: first so structural passes match on clean graphs, fold norms before
#: fusing activations so ``conv -> bn -> relu`` collapses fully, sweep dead
#: code last.
DEFAULT_INFERENCE_PASSES: tuple[str, ...] = (
    CanonicalizeShapes.name,
    FoldBatchNorm.name,
    FuseConvActivation.name,
    EliminateDeadLayers.name,
)


def build_pipeline(
    names: Iterable[str], name: str = "custom"
) -> PassPipeline:
    """A pipeline of registered passes, in the order given."""
    passes = []
    for pass_name in names:
        if pass_name not in PASS_REGISTRY:
            raise KeyError(
                f"unknown pass {pass_name!r}; one of "
                f"{sorted(PASS_REGISTRY)}"
            )
        passes.append(PASS_REGISTRY[pass_name]())
    return PassPipeline(tuple(passes), name=name)


def default_inference_pipeline() -> PassPipeline:
    """The pipeline ``--fuse`` flags and ``inference_mode`` options apply."""
    return build_pipeline(DEFAULT_INFERENCE_PASSES, name="inference")


#: Memo of :func:`resolve_transform`: transform strings form a tiny, fixed
#: vocabulary, and resolving one in a hot loop should cost a lookup, not a
#: pipeline construction.  An LRUCache (not a bare dict) because serve
#: threads resolve transforms concurrently.  Safe because pipelines are
#: frozen and every resolution of the same string is interchangeable.
_RESOLVED_TRANSFORMS: LRUCache[str, "PassPipeline | None"] = LRUCache(
    maxsize=64
)


def resolve_transform(spec: str) -> PassPipeline | None:
    """Resolve a campaign/CLI transform string into a pipeline.

    ``""`` means no transform (``None``); ``"inference"`` is the default
    fusion pipeline; anything else is a comma-separated list of registered
    pass names.  The string form is what
    :class:`~repro.benchdata.engine.CampaignSpec` carries, keeping specs
    JSON-serialisable and worker-picklable.  Results are memoised per
    string, and repeated calls return the same pipeline instance — which
    also keeps its cached fingerprint warm.
    """

    def build() -> PassPipeline | None:
        if not spec:
            return None
        if spec == "inference":
            return default_inference_pipeline()
        return build_pipeline(
            [s.strip() for s in spec.split(",") if s.strip()]
        )

    return _RESOLVED_TRANSFORMS.get_or_compute(spec, build)


__all__ = [
    "FUSABLE_ACTIVATIONS",
    "Pass",
    "PassResult",
    "PipelineResult",
    "GraphPass",
    "CanonicalizeShapes",
    "FoldBatchNorm",
    "FuseConvActivation",
    "EliminateDeadLayers",
    "PassPipeline",
    "PASS_REGISTRY",
    "PIPELINE_CACHE",
    "DEFAULT_INFERENCE_PASSES",
    "build_pipeline",
    "default_inference_pipeline",
    "resolve_transform",
]
