"""Tensor shape arithmetic for the ConvNet IR.

Shapes are per-sample (no batch dimension).  ConvMeter's metrics scale
linearly with the batch size, so the IR counts everything for a single image
and the performance models multiply by the (mini-)batch size later — exactly
the factorisation used in Eq. 3 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes per element for single-precision floats, the precision used by the
#: paper's PyTorch benchmarks.
FLOAT32_BYTES = 4


@dataclass(frozen=True)
class TensorShape:
    """Shape of a per-sample activation tensor.

    Either a feature map (``channels, height, width``) or a flat vector
    (``channels`` only, ``height = width = None``).
    """

    channels: int
    height: int | None = None
    width: int | None = None

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if (self.height is None) != (self.width is None):
            raise ValueError("height and width must both be set or both be None")
        if self.height is not None:
            if self.height <= 0 or self.width <= 0:
                raise ValueError(
                    f"spatial dims must be positive, got {self.height}x{self.width}"
                )

    @property
    def is_spatial(self) -> bool:
        """True for feature maps, False for flat (post-``Flatten``) vectors."""
        return self.height is not None

    @property
    def numel(self) -> int:
        """Number of scalar elements per sample."""
        if self.height is None:
            return self.channels
        return self.channels * self.height * self.width

    @property
    def nbytes(self) -> int:
        """Size in bytes per sample at float32 precision."""
        return self.numel * FLOAT32_BYTES

    def flattened(self) -> "TensorShape":
        """Collapse spatial dimensions into the channel dimension."""
        return TensorShape(self.numel)

    def __str__(self) -> str:
        if self.height is None:
            return f"({self.channels})"
        return f"({self.channels}, {self.height}, {self.width})"


def conv_output_hw(
    in_size: int, kernel: int, stride: int, padding: int, dilation: int = 1
) -> int:
    """Output spatial extent of a convolution/pooling window.

    Standard PyTorch floor-mode formula.
    """
    effective = dilation * (kernel - 1) + 1
    out = (in_size + 2 * padding - effective) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window (k={kernel}, s={stride}, p={padding}, d={dilation}) "
            f"does not fit input of size {in_size}"
        )
    return out


def pool_output_hw_ceil(in_size: int, kernel: int, stride: int, padding: int) -> int:
    """Output size for ceil-mode pooling (used by some torchvision models)."""
    out = math.ceil((in_size + 2 * padding - kernel) / stride) + 1
    # PyTorch clips windows that start entirely inside the padding.
    if (out - 1) * stride >= in_size + padding:
        out -= 1
    if out <= 0:
        raise ValueError(
            f"ceil-mode window (k={kernel}, s={stride}, p={padding}) "
            f"does not fit input of size {in_size}"
        )
    return out
