"""Transformer layers for the IR — the paper's future-work extension.

Section 3: "the same analogy can potentially be applied to other
deep-learning model categories with minor effort, such as language models
[and] vision transformers."  These layers make that concrete: token
sequences are represented as ``TensorShape(dim, seq_len, 1)`` feature maps
so the existing graph machinery (builder, metrics, roofline profiling)
applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.layers import Layer
from repro.graph.tensor import TensorShape


@dataclass(frozen=True)
class TokensFromFeatureMap(Layer):
    """Flatten a (C, H, W) patch grid into (C, H·W, 1) tokens.

    Learned extra tokens are modelled separately by :class:`ClassToken`.
    """

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial:
            raise ValueError("TokensFromFeatureMap requires a spatial input")
        return TensorShape(shape.channels, shape.height * shape.width, 1)


@dataclass(frozen=True)
class ClassToken(Layer):
    """Prepend a learned class token: (d, S, 1) → (d, S+1, 1)."""

    dim: int = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if shape.channels != self.dim:
            raise ValueError(
                f"ClassToken expects dim {self.dim}, got {shape.channels}"
            )
        return TensorShape(shape.channels, shape.height + 1, shape.width)

    def param_count(self) -> int:
        return self.dim


@dataclass(frozen=True)
class PositionalEmbedding(Layer):
    """Add a learned positional embedding of shape (dim, seq_len)."""

    dim: int = 0
    seq_len: int = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if shape.channels != self.dim or shape.height != self.seq_len:
            raise ValueError(
                f"PositionalEmbedding expects ({self.dim}, {self.seq_len}),"
                f" got {shape}"
            )
        return shape

    def param_count(self) -> int:
        return self.dim * self.seq_len

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        return output.numel  # one add per element


@dataclass(frozen=True)
class LayerNorm(Layer):
    """Layer normalisation over the channel (embedding) dimension."""

    dim: int = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if shape.channels != self.dim:
            raise ValueError(
                f"LayerNorm expects dim {self.dim}, got {shape.channels}"
            )
        return shape

    def param_count(self) -> int:
        return 2 * self.dim  # scale and shift

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        # mean, variance, normalise, affine ≈ 8 ops per element.
        return 8 * output.numel


@dataclass(frozen=True)
class TokenLinear(Layer):
    """Per-token linear projection: (d_in, S, 1) → (d_out, S, 1)."""

    in_features: int = 0
    out_features: int = 0
    bias: bool = True

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial or shape.width != 1:
            raise ValueError("TokenLinear requires a (d, S, 1) token tensor")
        if shape.channels != self.in_features:
            raise ValueError(
                f"TokenLinear expects {self.in_features} features, "
                f"got {shape.channels}"
            )
        return TensorShape(self.out_features, shape.height, 1)

    def param_count(self) -> int:
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        seq = output.height
        macs = seq * self.in_features * self.out_features
        return 2 * macs + (output.numel if self.bias else 0)


@dataclass(frozen=True)
class ScaledDotProductAttention(Layer):
    """Multi-head attention core: softmax(Q·Kᵀ/√d)·V.

    Consumes three (d, S, 1) tensors (queries, keys, values) and produces
    (d, S, 1).  FLOPs cover both S×S matmuls plus the softmax.
    """

    num_heads: int = 1

    ARITY = 3

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        q, k, v = inputs
        if q != k or q != v:
            raise ValueError(
                f"attention inputs must share a shape, got {q}, {k}, {v}"
            )
        if not q.is_spatial or q.width != 1:
            raise ValueError("attention requires (d, S, 1) token tensors")
        if q.channels % self.num_heads:
            raise ValueError(
                f"dim {q.channels} not divisible by {self.num_heads} heads"
            )
        return q

    def flops(self, inputs: Sequence[TensorShape], output: TensorShape) -> int:
        dim, seq = output.channels, output.height
        scores = 2 * seq * seq * dim       # Q · Kᵀ over all heads
        softmax = 5 * seq * seq * self.num_heads
        weighted = 2 * seq * seq * dim     # A · V
        return scores + softmax + weighted


@dataclass(frozen=True)
class SelectToken(Layer):
    """Extract one token (e.g. the class token) as a flat vector."""

    index: int = 0

    def _infer(self, inputs: Sequence[TensorShape]) -> TensorShape:
        (shape,) = inputs
        if not shape.is_spatial or shape.width != 1:
            raise ValueError("SelectToken requires a (d, S, 1) token tensor")
        if not 0 <= self.index < shape.height:
            raise ValueError(
                f"token index {self.index} out of range for S={shape.height}"
            )
        return TensorShape(shape.channels)
