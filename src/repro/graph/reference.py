"""Numerical reference executor for the ConvNet IR.

Runs a graph forward on real numpy arrays.  This is not a performance tool —
it exists so tests can check that shape inference, layer semantics, and the
block-extraction machinery agree with actual array computation.  Convolution
uses an im2col + matmul formulation (the textbook definition the paper's
FLOP counts assume).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import ComputeGraph
from repro.graph.layers import (
    Activation,
    AdaptiveAvgPool2d,
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Input,
    Linear,
    LocalResponseNorm,
    MaxPool2d,
    Multiply,
    ZeroPad2d,
)
from repro.graph.transformer_layers import (
    ClassToken,
    LayerNorm,
    PositionalEmbedding,
    ScaledDotProductAttention,
    SelectToken,
    TokenLinear,
    TokensFromFeatureMap,
)


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    return v if isinstance(v, tuple) else (v, v)


def im2col(
    x: np.ndarray,
    kernel: tuple[int, int],
    stride: tuple[int, int],
    padding: tuple[int, int],
    dilation: int = 1,
) -> np.ndarray:
    """Unfold (B, C, H, W) into (B, C*kh*kw, out_h*out_w) patch columns."""
    b, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    eff_kh = dilation * (kh - 1) + 1
    eff_kw = dilation * (kw - 1) + 1
    out_h = (h + 2 * ph - eff_kh) // sh + 1
    out_w = (w + 2 * pw - eff_kw) // sw + 1
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((b, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            hi = i * dilation
            wj = j * dilation
            cols[:, :, i, j] = padded[
                :, :, hi : hi + sh * out_h : sh, wj : wj + sw * out_w : sw
            ]
    return cols.reshape(b, c * kh * kw, out_h * out_w)


def conv2d_forward(x: np.ndarray, layer: Conv2d, weight: np.ndarray,
                   bias: np.ndarray | None) -> np.ndarray:
    """Grouped 2-D convolution via im2col."""
    kh, kw = _pair(layer.kernel_size)
    sh, sw = _pair(layer.stride)
    ph, pw = _pair(layer.padding)
    b, c, h, w = x.shape
    g = layer.groups
    cin_g = layer.in_channels // g
    cout_g = layer.out_channels // g
    eff_kh = layer.dilation * (kh - 1) + 1
    eff_kw = layer.dilation * (kw - 1) + 1
    out_h = (h + 2 * ph - eff_kh) // sh + 1
    out_w = (w + 2 * pw - eff_kw) // sw + 1
    out = np.empty((b, layer.out_channels, out_h, out_w), dtype=x.dtype)
    w_mat = weight.reshape(g, cout_g, cin_g * kh * kw)
    for gi in range(g):
        xg = x[:, gi * cin_g : (gi + 1) * cin_g]
        cols = im2col(xg, (kh, kw), (sh, sw), (ph, pw), layer.dilation)
        res = np.einsum("ok,bkl->bol", w_mat[gi], cols)
        out[:, gi * cout_g : (gi + 1) * cout_g] = res.reshape(
            b, cout_g, out_h, out_w
        )
    if bias is not None:
        out += bias[None, :, None, None]
    return out


def _pool2d(x: np.ndarray, layer: MaxPool2d | AvgPool2d, mode: str) -> np.ndarray:
    kh, kw = _pair(layer.kernel_size)
    stride = layer.stride if layer.stride is not None else layer.kernel_size
    sh, sw = _pair(stride)
    ph, pw = _pair(layer.padding)
    b, c, h, w = x.shape
    pad_value = -np.inf if mode == "max" else 0.0
    padded = np.full((b, c, h + 2 * ph, w + 2 * pw), pad_value, dtype=x.dtype)
    padded[:, :, ph : ph + h, pw : pw + w] = x
    if layer.ceil_mode:
        from repro.graph.tensor import pool_output_hw_ceil

        out_h = pool_output_hw_ceil(h, kh, sh, ph)
        out_w = pool_output_hw_ceil(w, kw, sw, pw)
        need_h = (out_h - 1) * sh + kh
        need_w = (out_w - 1) * sw + kw
        extra_h = max(0, need_h - padded.shape[2])
        extra_w = max(0, need_w - padded.shape[3])
        if extra_h or extra_w:
            padded = np.pad(
                padded,
                ((0, 0), (0, 0), (0, extra_h), (0, extra_w)),
                constant_values=pad_value,
            )
    else:
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
    windows = np.empty((b, c, out_h, out_w, kh * kw), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            windows[..., i * kw + j] = padded[
                :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
            ]
    if mode == "max":
        return windows.max(axis=-1)
    # Average pooling divides by the full window size (count_include_pad).
    return windows.sum(axis=-1) / (kh * kw)


def _adaptive_avgpool(x: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    b, c, h, w = x.shape
    oh, ow = out_hw
    out = np.empty((b, c, oh, ow), dtype=x.dtype)
    for i in range(oh):
        h0, h1 = (i * h) // oh, -(-((i + 1) * h) // oh)
        for j in range(ow):
            w0, w1 = (j * w) // ow, -(-((j + 1) * w) // ow)
            out[:, :, i, j] = x[:, :, h0:h1, w0:w1].mean(axis=(2, 3))
    return out


_ACTIVATIONS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "relu6": lambda x: np.clip(x, 0.0, 6.0),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "silu": lambda x: x / (1.0 + np.exp(-x)),
    "hardsigmoid": lambda x: np.clip(x / 6.0 + 0.5, 0.0, 1.0),
    "hardswish": lambda x: x * np.clip(x / 6.0 + 0.5, 0.0, 1.0),
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3))),
}


class ReferenceExecutor:
    """Executes a graph forward with deterministic random parameters."""

    def __init__(self, graph: ComputeGraph, seed: int = 0) -> None:
        self.graph = graph
        self.rng = np.random.default_rng(seed)
        self.params: dict[str, dict[str, np.ndarray]] = {}
        self._init_params()

    def _init_params(self) -> None:
        for node in self.graph:
            layer = node.layer
            if isinstance(layer, Conv2d):
                kh, kw = _pair(layer.kernel_size)
                shape = (
                    layer.out_channels,
                    layer.in_channels // layer.groups,
                    kh,
                    kw,
                )
                scale = 1.0 / np.sqrt(np.prod(shape[1:]))
                entry = {
                    "weight": self.rng.normal(0, scale, shape).astype(np.float64)
                }
                if layer.bias:
                    entry["bias"] = self.rng.normal(
                        0, 0.01, layer.out_channels
                    ).astype(np.float64)
                self.params[node.name] = entry
            elif isinstance(layer, Linear):
                scale = 1.0 / np.sqrt(layer.in_features)
                entry = {
                    "weight": self.rng.normal(
                        0, scale, (layer.out_features, layer.in_features)
                    ).astype(np.float64)
                }
                if layer.bias:
                    entry["bias"] = self.rng.normal(
                        0, 0.01, layer.out_features
                    ).astype(np.float64)
                self.params[node.name] = entry
            elif isinstance(layer, BatchNorm2d):
                self.params[node.name] = {
                    "gamma": np.ones(layer.num_features),
                    "beta": np.zeros(layer.num_features),
                    "mean": np.zeros(layer.num_features),
                    "var": np.ones(layer.num_features),
                }
            elif isinstance(layer, TokenLinear):
                scale = 1.0 / np.sqrt(layer.in_features)
                entry = {
                    "weight": self.rng.normal(
                        0, scale, (layer.out_features, layer.in_features)
                    )
                }
                if layer.bias:
                    entry["bias"] = self.rng.normal(
                        0, 0.01, layer.out_features
                    )
                self.params[node.name] = entry
            elif isinstance(layer, LayerNorm):
                self.params[node.name] = {
                    "gamma": np.ones(layer.dim),
                    "beta": np.zeros(layer.dim),
                }
            elif isinstance(layer, ClassToken):
                self.params[node.name] = {
                    "token": self.rng.normal(0, 0.02, layer.dim)
                }
            elif isinstance(layer, PositionalEmbedding):
                self.params[node.name] = {
                    "embed": self.rng.normal(
                        0, 0.02, (layer.dim, layer.seq_len)
                    )
                }

    def run(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; ``x`` has shape (B, C, H, W) matching the graph input."""
        inputs = self.graph.input_nodes
        if len(inputs) != 1:
            raise ValueError("ReferenceExecutor supports single-input graphs")
        values: dict[str, np.ndarray] = {}
        return self._run_from({inputs[0].name: x}, values)

    def run_with_inputs(self, feeds: dict[str, np.ndarray]) -> np.ndarray:
        """Forward pass with explicit per-input feeds (for block subgraphs)."""
        return self._run_from(dict(feeds), {})

    def _run_from(
        self,
        feeds: dict[str, np.ndarray],
        values: dict[str, np.ndarray],
    ) -> np.ndarray:
        for node in self.graph:
            layer = node.layer
            if isinstance(layer, Input):
                if node.name not in feeds:
                    raise ValueError(f"missing feed for input {node.name!r}")
                values[node.name] = feeds[node.name]
                continue
            args = [values[p] for p in node.inputs]
            values[node.name] = self._apply(node.name, layer, args)
        return values[self.graph.output_node.name]

    @staticmethod
    def _epilogue(layer: object, out: np.ndarray) -> np.ndarray:
        """Apply the activation a fused conv/linear absorbed, if any.

        Folded BatchNorms need no numeric counterpart here: reference
        parameters initialise BN at (near-)identity, which folds into the
        kernel as a no-op.
        """
        kind = getattr(layer, "activation", "")
        if kind:
            return _ACTIVATIONS[kind](out)
        return out

    def _apply(
        self, name: str, layer: object, args: list[np.ndarray]
    ) -> np.ndarray:
        if isinstance(layer, Conv2d):
            p = self.params[name]
            out = conv2d_forward(args[0], layer, p["weight"], p.get("bias"))
            return self._epilogue(layer, out)
        if isinstance(layer, Linear):
            p = self.params[name]
            out = args[0] @ p["weight"].T
            if "bias" in p:
                out = out + p["bias"]
            return self._epilogue(layer, out)
        if isinstance(layer, BatchNorm2d):
            p = self.params[name]
            x = args[0]
            inv = 1.0 / np.sqrt(p["var"] + 1e-5)
            return (x - p["mean"][None, :, None, None]) * (
                p["gamma"] * inv
            )[None, :, None, None] + p["beta"][None, :, None, None]
        if isinstance(layer, Activation):
            return _ACTIVATIONS[layer.kind](args[0])
        if isinstance(layer, MaxPool2d):
            return _pool2d(args[0], layer, "max")
        if isinstance(layer, AvgPool2d):
            return _pool2d(args[0], layer, "avg")
        if isinstance(layer, AdaptiveAvgPool2d):
            return _adaptive_avgpool(args[0], _pair(layer.output_size))
        if isinstance(layer, GlobalAvgPool2d):
            return args[0].mean(axis=(2, 3), keepdims=True)
        if isinstance(layer, Flatten):
            return args[0].reshape(args[0].shape[0], -1)
        if isinstance(layer, Dropout):
            return args[0]  # inference mode
        if isinstance(layer, Add):
            out = args[0]
            for a in args[1:]:
                out = out + a
            return out
        if isinstance(layer, Concat):
            return np.concatenate(args, axis=1)
        if isinstance(layer, Multiply):
            a, b = args
            return a * b  # numpy broadcasting handles the (C,1,1) gate
        if isinstance(layer, LocalResponseNorm):
            x = args[0]
            sq = x * x
            c = x.shape[1]
            acc = np.zeros_like(x)
            half = layer.size // 2
            for ch in range(c):
                lo, hi = max(0, ch - half), min(c, ch + half + 1)
                acc[:, ch] = sq[:, lo:hi].sum(axis=1)
            return x / (2.0 + 1e-4 * acc / layer.size) ** 0.75
        if isinstance(layer, ZeroPad2d):
            ph, pw = _pair(layer.padding)
            return np.pad(args[0], ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        if isinstance(layer, TokensFromFeatureMap):
            b, c, h, w = args[0].shape
            return args[0].reshape(b, c, h * w, 1)
        if isinstance(layer, ClassToken):
            x = args[0]
            token = self.params[name]["token"]
            b = x.shape[0]
            cls = np.broadcast_to(
                token[None, :, None, None], (b, x.shape[1], 1, 1)
            )
            return np.concatenate([cls, x], axis=2)
        if isinstance(layer, PositionalEmbedding):
            return args[0] + self.params[name]["embed"][None, :, :, None]
        if isinstance(layer, LayerNorm):
            x = args[0]
            p = self.params[name]
            mean = x.mean(axis=1, keepdims=True)
            var = x.var(axis=1, keepdims=True)
            normed = (x - mean) / np.sqrt(var + 1e-6)
            return normed * p["gamma"][None, :, None, None] + (
                p["beta"][None, :, None, None]
            )
        if isinstance(layer, TokenLinear):
            x = args[0][..., 0]  # (B, d_in, S)
            p = self.params[name]
            out = np.einsum("oi,bis->bos", p["weight"], x)
            if "bias" in p:
                out = out + p["bias"][None, :, None]
            return out[..., None]
        if isinstance(layer, ScaledDotProductAttention):
            q, k, v = (a[..., 0] for a in args)  # (B, d, S)
            b, d, s = q.shape
            h = layer.num_heads
            dh = d // h
            qh = q.reshape(b, h, dh, s)
            kh = k.reshape(b, h, dh, s)
            vh = v.reshape(b, h, dh, s)
            scores = np.einsum("bhdi,bhdj->bhij", qh, kh) / np.sqrt(dh)
            scores -= scores.max(axis=-1, keepdims=True)
            attn = np.exp(scores)
            attn /= attn.sum(axis=-1, keepdims=True)
            out = np.einsum("bhij,bhdj->bhdi", attn, vh)
            return out.reshape(b, d, s)[..., None]
        if isinstance(layer, SelectToken):
            return args[0][:, :, layer.index, 0]
        raise NotImplementedError(f"no reference implementation for {layer!r}")
