"""Pipeline model parallelism via block-level prediction.

Section 3: "ConvMeter can be extended to support other parallelization
strategies, such as model parallelism, by leveraging ConvMeter's capability
to predict subgraphs or blocks."  This module does exactly that: a model's
blocks are partitioned into pipeline stages using *predicted* block times,
and the pipeline's steady-state step time follows from the slowest stage
plus inter-stage activation transfers — no measurement of any candidate
partition required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchdata.records import ConvNetFeatures
from repro.core.forward import ForwardModel
from repro.distributed.interconnect import Interconnect, NVLINK3
from repro.graph.graph import ComputeGraph
from repro.hardware.roofline import profile_graph


@dataclass(frozen=True)
class PipelineStage:
    """One contiguous group of blocks assigned to a device."""

    index: int
    blocks: tuple[str, ...]
    #: Predicted compute time of the stage for one micro-batch, seconds.
    compute_time: float
    #: Bytes of activations handed to the next stage per micro-batch.
    boundary_bytes: float


@dataclass(frozen=True)
class PipelinePlan:
    """A complete pipeline partition with its predicted performance."""

    model: str
    micro_batch: int
    stages: tuple[PipelineStage, ...]
    link: Interconnect

    @property
    def bottleneck_time(self) -> float:
        """Steady-state time per micro-batch: slowest stage plus its
        outgoing transfer (1F1B pipelining overlaps everything else)."""
        return max(
            s.compute_time + self.link.transfer_time(s.boundary_bytes)
            * (1 if s.index < len(self.stages) - 1 else 0)
            for s in self.stages
        )

    @property
    def pipeline_efficiency(self) -> float:
        """Total compute divided by (stages × bottleneck) — 1.0 is a
        perfectly balanced pipeline."""
        total = sum(s.compute_time for s in self.stages)
        return total / (len(self.stages) * self.bottleneck_time)

    def step_time(self, n_micro_batches: int) -> float:
        """Wall time of one training-style step of ``n_micro_batches``:
        fill/drain ramp plus steady-state slots."""
        if n_micro_batches < 1:
            raise ValueError("need at least one micro-batch")
        slots = n_micro_batches + len(self.stages) - 1
        return slots * self.bottleneck_time


def _block_time_and_boundary(
    graph: ComputeGraph,
    scope: str,
    model: ForwardModel,
    micro_batch: int,
) -> tuple[float, float]:
    sub = graph.block_subgraph(scope)
    profile = profile_graph(sub)
    features = ConvNetFeatures.from_profile(profile)
    time = max(model.predict_one(features, micro_batch), 0.0)
    out_elems = sub.output_node.output_shape.numel
    return time, 4.0 * out_elems * micro_batch


def plan_pipeline(
    graph: ComputeGraph,
    forward_model: ForwardModel,
    n_stages: int,
    micro_batch: int = 1,
    link: Interconnect = NVLINK3,
) -> PipelinePlan:
    """Partition a model's blocks into ``n_stages`` contiguous stages.

    Greedy balanced partition on predicted block times: walk the blocks in
    order, starting a new stage whenever the running stage exceeds the
    ideal per-stage share (keeping enough blocks for the remaining stages).
    """
    blocks = graph.block_names()
    if n_stages < 1:
        raise ValueError("need at least one stage")
    if len(blocks) < n_stages:
        raise ValueError(
            f"{graph.name} has {len(blocks)} blocks, cannot make "
            f"{n_stages} stages"
        )
    times = {}
    boundaries = {}
    for scope in blocks:
        t, nbytes = _block_time_and_boundary(
            graph, scope, forward_model, micro_batch
        )
        times[scope] = t
        boundaries[scope] = nbytes

    ideal = sum(times.values()) / n_stages
    stages: list[PipelineStage] = []
    current: list[str] = []
    current_time = 0.0
    remaining_blocks = len(blocks)
    for scope in blocks:
        remaining_stages = n_stages - len(stages)
        must_close = remaining_blocks == remaining_stages - 1
        if current and (current_time >= ideal or must_close) and (
            remaining_stages > 1
        ):
            stages.append(
                PipelineStage(
                    index=len(stages),
                    blocks=tuple(current),
                    compute_time=current_time,
                    boundary_bytes=boundaries[current[-1]],
                )
            )
            current, current_time = [], 0.0
        current.append(scope)
        current_time += times[scope]
        remaining_blocks -= 1
    stages.append(
        PipelineStage(
            index=len(stages),
            blocks=tuple(current),
            compute_time=current_time,
            boundary_bytes=boundaries[current[-1]],
        )
    )
    if len(stages) != n_stages:
        raise RuntimeError(
            f"partitioning produced {len(stages)} stages, wanted {n_stages}"
        )
    return PipelinePlan(
        model=graph.name,
        micro_batch=micro_batch,
        stages=tuple(stages),
        link=link,
    )


def compare_stage_counts(
    graph: ComputeGraph,
    forward_model: ForwardModel,
    stage_counts: tuple[int, ...],
    micro_batch: int = 1,
    n_micro_batches: int = 8,
    link: Interconnect = NVLINK3,
) -> dict[int, PipelinePlan]:
    """Plans for several pipeline depths — the what-if sweep a model-
    parallel scheduler would run."""
    return {
        k: plan_pipeline(graph, forward_model, k, micro_batch, link)
        for k in stage_counts
    }
