"""Extensions beyond the paper's evaluation.

Implements the outlook items of the paper's conclusion: applying the
ConvMeter methodology to vision transformers (:mod:`~repro.extensions.
transformer`) and to edge processors (the ``jetson-agx-orin`` device
preset used by ``examples/whatif_hardware.py``).
"""

from repro.extensions.transformer import (
    transformer_features,
    vit_inference_campaign,
    vit_training_campaign,
)
from repro.extensions.model_parallel import (
    PipelinePlan,
    PipelineStage,
    compare_stage_counts,
    plan_pipeline,
)

__all__ = [
    "transformer_features",
    "vit_inference_campaign",
    "vit_training_campaign",
    "PipelinePlan",
    "PipelineStage",
    "plan_pipeline",
    "compare_stage_counts",
]
