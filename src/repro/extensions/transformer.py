"""ConvMeter for vision transformers (the paper's future-work item).

Section 3 argues "the same analogy can potentially be applied to other
deep-learning model categories with minor effort".  The minor effort is the
metric mapping: a transformer's runtime-carrying layers are its token
projections and attention matmuls rather than convolutions, so the Inputs
and Outputs metrics sum the tensor sizes of those *primary compute layers*
(token-linears, attention, plus the single patch-embedding convolution).
Everything else — the linear model, the fitting, the leave-one-out
protocol — is reused verbatim.
"""

from __future__ import annotations

from typing import Sequence

from repro.benchdata.records import ConvNetFeatures, Dataset, TimingRecord
from repro.caching import LRUCache
from repro.graph.graph import ComputeGraph
from repro.graph.metrics import graph_costs
from repro.hardware.device import A100_80GB, DeviceSpec
from repro.hardware.executor import SimulatedExecutor
from repro.hardware.memory import fits
from repro.hardware.roofline import CostProfile, profile_graph
from repro.zoo.registry import build_model

#: Layer types that carry a transformer's compute (the analogue of the
#: convolutional layers in the paper's metric definitions).
PRIMARY_COMPUTE_TYPES = frozenset(
    {"Conv2d", "TokenLinear", "ScaledDotProductAttention", "Linear"}
)

#: The ViT variants evaluated by the extension.
VIT_MODELS: tuple[str, ...] = ("vit_tiny_16", "vit_small_16", "vit_base_16")

#: ViT image sizes must be multiples of the 16 px patch.
VIT_IMAGE_SIZES: tuple[int, ...] = (64, 96, 128, 160, 192, 224)
VIT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def transformer_features(graph: ComputeGraph) -> ConvNetFeatures:
    """ConvMeter metric vector with transformer-aware Inputs/Outputs."""
    costs = graph_costs(graph)
    primary = [c for c in costs if c.layer_type in PRIMARY_COMPUTE_TYPES]
    return ConvNetFeatures(
        flops=float(sum(c.flops for c in costs)),
        inputs=float(sum(c.input_elems for c in primary)),
        outputs=float(sum(c.output_elems for c in primary)),
        weights=float(sum(c.params for c in costs)),
        layers=sum(1 for c in costs if c.params > 0),
    )


#: Layer-type groups a workload decomposes into (transformer-aware).
WORKLOAD_GROUPS: tuple[str, ...] = (
    "conv", "token_linear", "attention", "linear", "other",
)

_GROUP_OF_TYPE = {
    "Conv2d": "conv",
    "TokenLinear": "token_linear",
    "ScaledDotProductAttention": "attention",
    "Linear": "linear",
}


def workload_decomposition(graph: ComputeGraph) -> dict[str, float]:
    """FLOP shares per layer-type group, summing to 1.

    The workload fingerprint PreNeT-style predictors condition on: a pure
    ConvNet decomposes to ``conv`` ≈ 1, a ViT splits its compute between
    ``token_linear`` and ``attention`` — the share vector tells a trained
    predictor *what kind* of workload a query is, not just how big.
    """
    costs = graph_costs(graph)
    shares = {group: 0.0 for group in WORKLOAD_GROUPS}
    total = float(sum(c.flops for c in costs))
    if total <= 0.0:
        return shares
    for c in costs:
        group = _GROUP_OF_TYPE.get(c.layer_type, "other")
        shares[group] += c.flops
    return {group: shares[group] / total for group in WORKLOAD_GROUPS}


#: Bounded, observable profile cache (same discipline as the campaign
#: engine's PROFILE_CACHE; `repro lint` bans unbounded lru_cache repo-wide).
VIT_PROFILE_CACHE: LRUCache[
    tuple[str, int], tuple[CostProfile, ConvNetFeatures]
] = LRUCache(maxsize=256)


def _vit_profile(model: str, image: int) -> tuple[CostProfile, ConvNetFeatures]:
    def build() -> tuple[CostProfile, ConvNetFeatures]:
        graph = build_model(model, image)
        return profile_graph(graph), transformer_features(graph)

    return VIT_PROFILE_CACHE.get_or_compute((model, image), build)


def vit_inference_campaign(
    models: Sequence[str] = VIT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = VIT_BATCH_SIZES,
    image_sizes: Sequence[int] = VIT_IMAGE_SIZES,
    seed: int = 0,
) -> Dataset:
    """Inference campaign over the ViT zoo with transformer features.

    Records are schema-compatible with the ConvNet campaigns, so the
    unmodified :class:`~repro.core.forward.ForwardModel` and leave-one-out
    protocol apply.
    """
    executor = SimulatedExecutor(device, seed=seed)
    data = Dataset()
    for model in models:
        for image in image_sizes:
            if image % 16:
                continue
            profile, features = _vit_profile(model, image)
            for batch in batch_sizes:
                if not fits(profile, batch, device, training=False):
                    continue
                t = executor.measure_inference(profile, batch)
                data.append(
                    TimingRecord(
                        model=model,
                        device=device.name,
                        image_size=image,
                        batch=batch,
                        nodes=1,
                        devices=1,
                        scenario="inference",
                        features=features,
                        t_fwd=t,
                    )
                )
    return data


def vit_training_campaign(
    models: Sequence[str] = VIT_MODELS,
    device: DeviceSpec = A100_80GB,
    batch_sizes: Sequence[int] = VIT_BATCH_SIZES,
    image_sizes: Sequence[int] = VIT_IMAGE_SIZES,
    seed: int = 0,
) -> Dataset:
    """Single-device training campaign over the ViT zoo.

    Enables the full :class:`~repro.core.training.TrainingStepModel` on
    transformers — the second half of the paper's future-work claim.
    """
    executor = SimulatedExecutor(device, seed=seed)
    data = Dataset()
    for model in models:
        for image in image_sizes:
            if image % 16:
                continue
            profile, features = _vit_profile(model, image)
            for batch in batch_sizes:
                if not fits(profile, batch, device, training=True):
                    continue
                phases = executor.measure_training_step(profile, batch)
                data.append(
                    TimingRecord(
                        model=model,
                        device=device.name,
                        image_size=image,
                        batch=batch,
                        nodes=1,
                        devices=1,
                        scenario="training",
                        features=features,
                        t_fwd=phases.forward,
                        t_bwd=phases.backward,
                        t_grad=phases.grad_update,
                    )
                )
    return data
