"""Load generator and latency benchmark for the prediction server.

``repro serve --bench`` boots a server on an ephemeral port, drives it
over real HTTP from ``threads`` concurrent clients with a *deterministic*
seeded query mix (so two bench runs issue byte-identical request
streams), and writes ``BENCH_serve.json`` — QPS, a latency histogram,
and the feature-cache hit rate — starting the perf trajectory ROADMAP
item 2 asks for.  Only the latencies themselves come from a real clock
(``time.perf_counter``, the sanctioned observability timer); everything
the served predictions contain stays simulated and deterministic.
"""

from __future__ import annotations

import bisect
import json
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.serve.registry import ModelRegistry
from repro.serve.server import PredictionServer, make_server

#: Schema identifier stamped into every bench payload.
BENCH_SCHEMA = "repro/serve-bench/v1"

#: Histogram bucket upper edges, milliseconds (last bucket is overflow).
HISTOGRAM_EDGES_MS = (
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

#: Networks the default query mix draws from — small, fast-to-profile
#: members of the zoo spanning dense, residual and depthwise regimes.
MIX_NETWORKS = ("alexnet", "resnet18", "resnet50", "mobilenet_v2", "vgg11")

MIX_IMAGES = (64, 128, 224)
MIX_BATCHES = (1, 8, 32, 128)


@dataclass(frozen=True)
class BenchConfig:
    """Everything that determines a bench run's request stream."""

    artifact: str
    queries: int = 256
    threads: int = 4
    seed: int = 0
    #: Fraction of requests that batch several queries into one POST.
    batch_share: float = 0.5
    #: Maximum queries folded into one batched request.
    max_request_queries: int = 8
    #: Fraction of queries predicted from the fused graph (--fuse path).
    fuse_share: float = 0.25


@dataclass
class BenchResult:
    """Latencies and counts collected by one client thread."""

    latencies_s: list[float] = field(default_factory=list)
    queries: int = 0
    errors: int = 0


def build_mix(config: BenchConfig, step_model: bool) -> list[dict[str, Any]]:
    """The deterministic request stream: a pure function of the config.

    Returns POST bodies.  ``step_model`` widens the mix with multi-node
    training-step coordinates; forward artifacts get batch-only queries.
    """
    rng = np.random.default_rng(config.seed)
    bodies: list[dict[str, Any]] = []
    produced = 0
    while produced < config.queries:
        if rng.random() < config.batch_share:
            room = config.queries - produced
            n = int(rng.integers(2, config.max_request_queries + 1))
            n = min(n, max(room, 1))
        else:
            n = 1
        queries = []
        for _ in range(n):
            query: dict[str, Any] = {
                "network": str(rng.choice(MIX_NETWORKS)),
                "image": int(rng.choice(MIX_IMAGES)),
                "batch": int(rng.choice(MIX_BATCHES)),
            }
            if rng.random() < config.fuse_share:
                query["fuse"] = True
            if step_model and rng.random() < 0.25:
                nodes = int(rng.choice((2, 4, 8)))
                query["nodes"] = nodes
                query["devices"] = nodes * 4
            queries.append(query)
        body = {"model": config.artifact}
        if n == 1:
            body.update(queries[0])
        else:
            body["queries"] = queries
        bodies.append(body)
        produced += n
    return bodies


def _client(
    host: str,
    port: int,
    bodies: Sequence[bytes],
    n_queries: Sequence[int],
    result: BenchResult,
) -> None:
    conn = HTTPConnection(host, port)
    try:
        for body, n in zip(bodies, n_queries):
            start = time.perf_counter()
            conn.request(
                "POST", "/predict", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            result.latencies_s.append(time.perf_counter() - start)
            if response.status == 200:
                result.queries += n
            else:
                result.errors += 1
    finally:
        conn.close()


def _percentile(sorted_latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending latency list."""
    if not sorted_latencies:
        return 0.0
    rank = max(int(np.ceil(q * len(sorted_latencies))) - 1, 0)
    return sorted_latencies[min(rank, len(sorted_latencies) - 1)]


def _histogram(latencies_ms: Sequence[float]) -> dict[str, Any]:
    counts = [0] * (len(HISTOGRAM_EDGES_MS) + 1)
    for ms in latencies_ms:
        counts[bisect.bisect_left(HISTOGRAM_EDGES_MS, ms)] += 1
    return {"edges_ms": list(HISTOGRAM_EDGES_MS), "counts": counts}


def run_bench(
    server: PredictionServer, config: BenchConfig
) -> dict[str, Any]:
    """Drive a (already started) server with the seeded mix; return the
    ``BENCH_serve.json`` payload."""
    entry = server.registry.get(config.artifact)
    bodies = build_mix(config, step_model=entry.kind == "training_step")
    encoded = [json.dumps(b).encode() for b in bodies]
    counts = [len(b.get("queries", ())) or 1 for b in bodies]
    host, port = server.server_address[:2]
    cache_before = server.features.stats()

    # Round-robin partition: deterministic given (mix, threads).
    results = [BenchResult() for _ in range(config.threads)]
    threads = []
    wall_start = time.perf_counter()
    for t in range(config.threads):
        thread = threading.Thread(
            target=_client,
            args=(
                host,
                port,
                encoded[t :: config.threads],
                counts[t :: config.threads],
                results[t],
            ),
            name=f"bench-client-{t}",
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    latencies = sorted(
        lat for result in results for lat in result.latencies_s
    )
    latencies_ms = [lat * 1e3 for lat in latencies]
    n_queries = sum(result.queries for result in results)
    n_errors = sum(result.errors for result in results)
    cache_delta = server.features.stats() - cache_before
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "artifact": config.artifact,
            "kind": entry.kind,
            "queries": config.queries,
            "requests": len(bodies),
            "threads": config.threads,
            "seed": config.seed,
            "batch_share": config.batch_share,
            "max_request_queries": config.max_request_queries,
            "fuse_share": config.fuse_share,
        },
        "totals": {
            "requests": len(latencies),
            "queries": n_queries,
            "errors": n_errors,
        },
        "wall_seconds": wall,
        "qps": n_queries / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": float(np.mean(latencies_ms)) if latencies_ms else 0.0,
            "p50": _percentile(latencies_ms, 0.50),
            "p90": _percentile(latencies_ms, 0.90),
            "p99": _percentile(latencies_ms, 0.99),
            "max": latencies_ms[-1] if latencies_ms else 0.0,
            "histogram": _histogram(latencies_ms),
        },
        "feature_cache": cache_delta.to_dict(),
        "counters": server.metrics()["counters"],
    }


def bench_registry(
    registry: ModelRegistry,
    config: BenchConfig,
    *,
    fuse: bool = False,
    domain_factor: float | None = 10.0,
) -> dict[str, Any]:
    """Boot a private server on an ephemeral port, bench it, shut down."""
    server = make_server(
        registry, port=0, fuse=fuse, domain_factor=domain_factor
    )
    thread = server.serve_background()
    try:
        return run_bench(server, config)
    finally:
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()


def validate_bench_payload(payload: Any) -> list[str]:
    """Schema check of a bench document, dispatched on ``$.schema``.

    Validates ``BENCH_serve.json`` (``repro/serve-bench/v1``) directly
    and delegates ``BENCH_campaign.json`` (``repro/campaign-bench/v1``)
    to :func:`repro.benchdata.bench.validate_campaign_bench_payload` and
    ``BENCH_leaderboard.json`` (``repro/leaderboard-bench/v1``) to
    :func:`repro.baselines.eval.validate_leaderboard_payload`, so CI and
    tests share one entry point for every bench artifact instead of
    duplicating key lists.

    Returns a list of problems (empty = valid).
    """
    from repro.baselines.eval import (
        LEADERBOARD_SCHEMA,
        validate_leaderboard_payload,
    )
    from repro.benchdata.bench import (
        CAMPAIGN_BENCH_SCHEMA,
        validate_campaign_bench_payload,
    )

    if (
        isinstance(payload, dict)
        and payload.get("schema") == CAMPAIGN_BENCH_SCHEMA
    ):
        return validate_campaign_bench_payload(payload)
    if (
        isinstance(payload, dict)
        and payload.get("schema") == LEADERBOARD_SCHEMA
    ):
        return validate_leaderboard_payload(payload)
    problems: list[str] = []

    def need(obj: Any, key: str, kind: type | tuple, where: str) -> Any:
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if not isinstance(value, kind) or isinstance(value, bool):
            problems.append(
                f"{where}.{key}: expected {kind}, got {type(value).__name__}"
            )
            return None
        return value

    if need(payload, "schema", str, "$") != BENCH_SCHEMA:
        problems.append(f"$.schema is not {BENCH_SCHEMA!r}")
    config = need(payload, "config", dict, "$")
    if config is not None:
        for key in ("artifact", "kind"):
            need(config, key, str, "$.config")
        for key in ("queries", "requests", "threads", "seed"):
            need(config, key, int, "$.config")
    totals = need(payload, "totals", dict, "$")
    if totals is not None:
        for key in ("requests", "queries", "errors"):
            need(totals, key, int, "$.totals")
    need(payload, "wall_seconds", (int, float), "$")
    need(payload, "qps", (int, float), "$")
    latency = need(payload, "latency_ms", dict, "$")
    if latency is not None:
        for key in ("mean", "p50", "p90", "p99", "max"):
            need(latency, key, (int, float), "$.latency_ms")
        hist = need(latency, "histogram", dict, "$.latency_ms")
        if hist is not None:
            edges = need(hist, "edges_ms", list, "$.latency_ms.histogram")
            hist_counts = need(
                hist, "counts", list, "$.latency_ms.histogram"
            )
            if (
                edges is not None
                and hist_counts is not None
                and len(hist_counts) != len(edges) + 1
            ):
                problems.append(
                    "$.latency_ms.histogram: counts must have one more "
                    "bucket (overflow) than edges_ms"
                )
    cache = need(payload, "feature_cache", dict, "$")
    if cache is not None:
        for key in ("hits", "misses", "evictions", "lookups", "hit_rate"):
            need(cache, key, (int, float), "$.feature_cache")
    need(payload, "counters", dict, "$")
    return problems


def write_bench(payload: dict[str, Any], path: str | Path) -> None:
    """Persist a bench payload (schema-validated first)."""
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid bench payload: "
            + "; ".join(problems)
        )
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
