"""The serve JSON protocol: query validation and vectorized prediction.

Everything the HTTP layer does besides sockets lives here as pure
functions, so the request/response contract is testable without a server
and the ``repro serve`` responses are guaranteed to agree with the
``repro predict`` CLI (both go through the same feature extraction and
the same fitted models).

A request is either one query or a batch::

    {"model": "default", "network": "resnet18", "batch": 8}
    {"model": "default",
     "queries": [{"network": "alexnet", "batch": 1},
                 {"network": "resnet50", "image": 128, "batch": 64}]}

Batched requests are answered **vectorized**: one design matrix covering
the whole query list and a single :meth:`LinearModel.predict` call per
constituent regression, bit-for-bit equal to evaluating the queries one
at a time (``tests/test_serve.py`` gates this with exact float ``==``,
the same way the campaign byte-identity suites gate parallel workers).

Query fields beyond the prediction coordinates:

* ``"fuse"`` — predict from the inference-fused graph's metric vector
  (the PR 5 pass pipeline), like ``repro predict --fuse``;
* ``"device"`` — a hardware preset name; the response then notes when the
  configuration would not fit that device's memory;
* ``"backend"`` — an execution-backend name from
  :data:`repro.hardware.backend.BACKEND_REGISTRY`; the memory-fit note is
  then evaluated under that backend's accounting (edge reservations,
  reduced-precision activations), defaulting the device to the backend's
  preset when ``"device"`` is unset;
* ``"node_counts"`` — switch the query to a scaling curve (Figure 8
  machinery) instead of a single step prediction.

Every response carries a ``"warnings"`` list with rendered FIT004
extrapolation diagnostics from :mod:`repro.analysis.audit` — a served
number that no measurement backs says so, per response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.analysis.audit import (
    artifact_prediction_warnings,
    prediction_warnings,
)
from repro.baselines.protocol import LearnedPredictor
from repro.benchdata.records import ConvNetFeatures, TimingRecord
from repro.core.features import forward_row
from repro.core.forward import ForwardModel
from repro.core.scalability import node_scaling_curve
from repro.core.training import TrainingStepModel
from repro.caching import LRUCache
from repro.graph.passes import resolve_transform
from repro.hardware.backend import BACKEND_REGISTRY, get_backend
from repro.hardware.device import DEVICE_PRESETS
from repro.hardware.memory import fits
from repro.hardware.roofline import CostProfile, zoo_profile
from repro.serve.registry import SERVABLE_KINDS, ArtifactEntry
from repro.zoo import available_models

#: Protocol version echoed in every response.
PROTOCOL_VERSION = 1

#: Default size of a server's (network, image, transform) feature cache.
DEFAULT_FEATURE_CACHE = 512

_QUERY_KEYS = frozenset({
    "network", "image", "batch", "nodes", "devices", "device", "fuse",
    "node_counts", "gpus_per_node", "backend",
})

_REQUEST_KEYS = frozenset({"model", "queries", "domain_factor"}) | _QUERY_KEYS


class ProtocolError(ValueError):
    """A request violates the protocol; carries the HTTP status to answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _positive_int(obj: dict, key: str, default: int) -> int:
    value = obj.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"query field {key!r} must be an integer")
    if value < 1:
        raise ProtocolError(f"query field {key!r} must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class PredictQuery:
    """One validated prediction coordinate."""

    network: str
    image: int = 224
    batch: int = 1
    nodes: int = 1
    devices: int = 1
    #: Hardware preset for memory-fit annotation ("" = no check).
    device: str = ""
    #: None inherits the server default; True/False overrides per query.
    fuse: bool | None = None
    #: Non-empty switches the query to a node-scaling curve.
    node_counts: tuple[int, ...] = ()
    gpus_per_node: int = 4
    #: Execution backend for the memory-fit annotation ("" = roofline).
    backend: str = ""

    @staticmethod
    def parse(obj: Any) -> "PredictQuery":
        if not isinstance(obj, dict):
            raise ProtocolError("each query must be a JSON object")
        unknown = set(obj) - _QUERY_KEYS
        if unknown:
            raise ProtocolError(
                f"unknown query field(s): {', '.join(sorted(unknown))}"
            )
        network = obj.get("network")
        if not isinstance(network, str) or not network:
            raise ProtocolError("query field 'network' (string) is required")
        if network not in available_models():
            raise ProtocolError(
                f"unknown network {network!r}; see `repro models`", status=404
            )
        device = obj.get("device", "")
        if not isinstance(device, str):
            raise ProtocolError("query field 'device' must be a string")
        if device and device not in DEVICE_PRESETS:
            raise ProtocolError(
                f"unknown device {device!r}; see `repro devices`", status=404
            )
        backend = obj.get("backend", "")
        if not isinstance(backend, str):
            raise ProtocolError("query field 'backend' must be a string")
        if backend and backend not in BACKEND_REGISTRY:
            raise ProtocolError(
                f"unknown backend {backend!r}; see `repro devices`",
                status=404,
            )
        if backend:
            # Fail the query, not the note: an invalid pairing (e.g. the
            # edge backend on a CPU preset) is a client error, not a warning.
            preset = DEVICE_PRESETS[device] if device else None
            try:
                get_backend(backend, preset)
            except ValueError as exc:
                raise ProtocolError(str(exc))
        fuse = obj.get("fuse")
        if fuse is not None and not isinstance(fuse, bool):
            raise ProtocolError("query field 'fuse' must be a boolean")
        raw_counts = obj.get("node_counts", ())
        if not isinstance(raw_counts, (list, tuple)):
            raise ProtocolError("query field 'node_counts' must be a list")
        node_counts = []
        for n in raw_counts:
            if isinstance(n, bool) or not isinstance(n, int) or n < 1:
                raise ProtocolError(
                    "query field 'node_counts' must hold integers >= 1"
                )
            node_counts.append(n)
        return PredictQuery(
            network=network,
            image=_positive_int(obj, "image", 224),
            batch=_positive_int(obj, "batch", 1),
            nodes=_positive_int(obj, "nodes", 1),
            devices=_positive_int(obj, "devices", 1),
            device=device,
            fuse=fuse,
            node_counts=tuple(node_counts),
            gpus_per_node=_positive_int(obj, "gpus_per_node", 4),
            backend=backend,
        )


@dataclass(frozen=True)
class PredictRequest:
    """One validated /predict body."""

    model: str | None
    queries: tuple[PredictQuery, ...]
    #: False when the body carried inline query fields (single response
    #: object) rather than a "queries" list.
    batched: bool
    domain_factor: float | None = None

    @staticmethod
    def parse(obj: Any) -> "PredictRequest":
        if not isinstance(obj, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(obj) - _REQUEST_KEYS
        if unknown:
            raise ProtocolError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        model = obj.get("model")
        if model is not None and not isinstance(model, str):
            raise ProtocolError("request field 'model' must be a string")
        factor = obj.get("domain_factor")
        if factor is not None:
            if isinstance(factor, bool) or not isinstance(factor, (int, float)):
                raise ProtocolError(
                    "request field 'domain_factor' must be a number"
                )
            if factor <= 0:
                raise ProtocolError(
                    "request field 'domain_factor' must be positive"
                )
            factor = float(factor)
        if "queries" in obj:
            raw = obj["queries"]
            if not isinstance(raw, list) or not raw:
                raise ProtocolError(
                    "request field 'queries' must be a non-empty list"
                )
            queries = tuple(PredictQuery.parse(q) for q in raw)
            return PredictRequest(model, queries, True, factor)
        query = PredictQuery.parse(
            {k: v for k, v in obj.items() if k in _QUERY_KEYS}
        )
        return PredictRequest(model, (query,), False, factor)


# -- feature resolution ------------------------------------------------------


class FeatureCache:
    """Bounded LRU of (network, image, transform) -> (profile, features).

    The key identifies the costed graph completely: zoo builds are
    deterministic and the transform string resolves to a content-
    fingerprinted pass pipeline, so two equal keys always denote the same
    graph fingerprint.  Profiles additionally share the global
    ``zoo_profile`` cache; this layer saves the per-request pipeline
    resolution and keeps serve traffic from evicting campaign entries.
    """

    def __init__(self, maxsize: int = DEFAULT_FEATURE_CACHE) -> None:
        self._cache: LRUCache[
            tuple[str, int, str], tuple[CostProfile, ConvNetFeatures]
        ] = LRUCache(maxsize=maxsize)

    def lookup(
        self, network: str, image: int, transform: str
    ) -> tuple[CostProfile, ConvNetFeatures]:
        def build() -> tuple[CostProfile, ConvNetFeatures]:
            profile = zoo_profile(
                network, image, resolve_transform(transform)
            )
            return profile, ConvNetFeatures.from_profile(profile)

        return self._cache.get_or_compute((network, image, transform), build)

    def stats(self):
        return self._cache.stats()

    def __len__(self) -> int:
        return len(self._cache)


# -- vectorized prediction ---------------------------------------------------


def predict_forward_batch(
    model: ForwardModel,
    features: Sequence[ConvNetFeatures],
    batches: Sequence[int],
) -> np.ndarray:
    """Forward times for N queries from one stacked design matrix."""
    X = np.empty((len(batches), len(model.metric_names) + 1))
    for i, (f, b) in enumerate(zip(features, batches)):
        X[i] = forward_row(f, b, model.metric_names)
    return model.model.predict(X)


def predict_step_batch(
    model: TrainingStepModel,
    features: Sequence[ConvNetFeatures],
    batches: Sequence[int],
    devices: Sequence[int],
    nodes: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """(forward, backward+update) times for N queries, vectorized.

    The combined model is piecewise (single-node vs multi-node rows), so
    the batch is partitioned by regime, each partition answered with one
    stacked ``predict`` call, and the results scattered back into query
    order — exactly equal to N ``predict_one`` calls.
    """
    from repro.core.features import combined_bwd_grad_row

    fwd = predict_forward_batch(model.forward, features, batches)
    bwd = np.empty(len(batches), dtype=np.float64)
    single = [i for i, n in enumerate(nodes) if n == 1]
    multi = [i for i, n in enumerate(nodes) if n > 1]
    if single:
        if not model.bwd_grad.single.is_fitted:
            raise ProtocolError(
                "no single-node records were available at fit time"
            )
        rows = np.empty(
            (len(single), len(model.bwd_grad.SINGLE_FEATURES))
        )
        for j, i in enumerate(single):
            rows[j] = model.bwd_grad._single_row(features[i], batches[i])
        bwd[single] = model.bwd_grad.single.predict(rows)
    if multi:
        if not model.bwd_grad.multi.is_fitted:
            raise ProtocolError(
                "no multi-node records were available at fit time"
            )
        rows = np.empty(
            (len(multi), len(model.bwd_grad.MULTI_FEATURES))
        )
        for j, i in enumerate(multi):
            rows[j] = combined_bwd_grad_row(
                features[i], batches[i], devices[i]
            )
        bwd[multi] = model.bwd_grad.multi.predict(rows)
    return fwd, bwd


# -- request answering -------------------------------------------------------


def _memory_note(
    query: PredictQuery, profile: CostProfile, training: bool
) -> list[str]:
    """Memory-fit annotation, backend-aware.

    A ``backend`` without a ``device`` checks against the backend's
    default device (e.g. the edge backend's Jetson preset); a bare
    ``device`` keeps the historical roofline check.
    """
    if not query.device and not query.backend:
        return []
    backend = None
    if query.backend:
        preset = DEVICE_PRESETS[query.device] if query.device else None
        backend = get_backend(query.backend, preset)
        device = backend.device
    else:
        device = DEVICE_PRESETS[query.device]
    if fits(profile, query.batch, device, training=training, backend=backend):
        return []
    under = f"{query.backend} backend on {device.name}" if query.backend \
        else query.device
    return [
        f"configuration exceeds {under} memory at batch "
        f"{query.batch}; the prediction extrapolates past what the device "
        "could measure"
    ]


def _scaling_prediction(
    entry: ArtifactEntry,
    query: PredictQuery,
    features: ConvNetFeatures,
    profile: CostProfile,
    fused: bool,
    factor: float | None,
) -> dict[str, Any]:
    model = entry.model
    if not isinstance(model, TrainingStepModel):
        raise ProtocolError(
            f"artifact {entry.name!r} ({entry.kind}) cannot answer scaling "
            "queries; fit a training_step model"
        )
    warnings: list[str] = []
    if factor is not None:
        for n in query.node_counts:
            warnings.extend(
                prediction_warnings(
                    model, features, query.batch,
                    devices=n * query.gpus_per_node, nodes=n, factor=factor,
                )
            )
    # The curve itself runs with the domain check silenced — the per-config
    # warnings above already cover it without touching the (process-global)
    # warnings machinery from server threads.
    points = node_scaling_curve(
        model, features, query.batch, query.node_counts,
        gpus_per_node=query.gpus_per_node, domain_factor=None,
    )
    return {
        "kind": "scaling",
        "network": query.network,
        "image": query.image,
        "per_device_batch": query.batch,
        "gpus_per_node": query.gpus_per_node,
        "fuse": fused,
        "points": [
            {
                "nodes": p.x,
                "devices": p.devices,
                "per_device_batch": p.per_device_batch,
                "step_seconds": p.step_time,
                "throughput": p.throughput,
            }
            for p in points
        ],
        "warnings": sorted(set(warnings)),
        **({"memory": note} if (note := _memory_note(query, profile, True))
           else {}),
    }


def answer_request(
    request: PredictRequest,
    entry: ArtifactEntry,
    cache: FeatureCache,
    *,
    default_transform: str = "",
    default_domain_factor: float | None = 10.0,
) -> dict[str, Any]:
    """Evaluate a validated request against one registry artifact.

    Returns the JSON-safe response body.  Scaling queries are answered
    per query; plain forward/step queries are answered vectorized across
    the whole list.
    """
    model = entry.model
    if entry.kind not in SERVABLE_KINDS:
        raise ProtocolError(
            f"artifact {entry.name!r} has kind {entry.kind!r}; servable "
            f"kinds: {', '.join(SERVABLE_KINDS)}"
        )
    factor = (
        request.domain_factor
        if request.domain_factor is not None
        else default_domain_factor
    )
    resolved: list[tuple[PredictQuery, CostProfile, ConvNetFeatures, bool]] = []
    for query in request.queries:
        fuse = (
            (default_transform == "inference")
            if query.fuse is None
            else query.fuse
        )
        transform = "inference" if fuse else ""
        # Per-query try is the protocol contract: the error message must
        # name the offending network@image, and lookup() is cached, so the
        # handler cost is paid once per distinct profile, not per query.
        try:  # repro-lint: disable=PERF008
            profile, features = cache.lookup(
                query.network, query.image, transform
            )
        except (ValueError, KeyError) as exc:
            raise ProtocolError(
                f"cannot profile {query.network}@{query.image}: {exc}"
            )
        resolved.append((query, profile, features, fuse))

    predictions: list[dict[str, Any]] = [{} for _ in resolved]
    plain = [i for i, (q, *_rest) in enumerate(resolved) if not q.node_counts]
    for i, (query, profile, features, fused) in enumerate(resolved):
        if query.node_counts:
            predictions[i] = _scaling_prediction(
                entry, query, features, profile, fused, factor
            )

    if plain:
        feats = [resolved[i][2] for i in plain]
        batches = [resolved[i][0].batch for i in plain]
        if isinstance(model, TrainingStepModel):
            devices = [resolved[i][0].devices for i in plain]
            nodes = [resolved[i][0].nodes for i in plain]
            fwd, bwd = predict_step_batch(
                model, feats, batches, devices, nodes
            )
            fwd_times, bwd_times = fwd.tolist(), bwd.tolist()
            for j, i in enumerate(plain):
                query, profile, features, fused = resolved[i]
                total = fwd_times[j] + bwd_times[j]
                predictions[i] = {
                    "kind": "training_step",
                    "network": query.network,
                    "image": query.image,
                    "batch": query.batch,
                    "nodes": query.nodes,
                    "devices": query.devices,
                    "fuse": fused,
                    "t_seconds": total,
                    "phases": {
                        "forward": fwd_times[j],
                        "backward_plus_update": bwd_times[j],
                    },
                    "throughput": query.batch * query.devices / total,
                    "warnings": prediction_warnings(
                        model, features, query.batch,
                        devices=query.devices, nodes=query.nodes,
                        factor=factor,
                    )
                    + _memory_note(query, profile, True),
                }
        elif isinstance(model, ForwardModel):
            times = predict_forward_batch(model, feats, batches).tolist()
            for j, i in enumerate(plain):
                query, profile, features, fused = resolved[i]
                t = times[j]
                predictions[i] = {
                    "kind": entry.kind,
                    "network": query.network,
                    "image": query.image,
                    "batch": query.batch,
                    "nodes": query.nodes,
                    "devices": query.devices,
                    "fuse": fused,
                    "t_seconds": t,
                    "throughput": query.batch / t,
                    "warnings": prediction_warnings(
                        model, features, query.batch,
                        devices=query.devices, nodes=query.nodes,
                        factor=factor,
                    )
                    + _memory_note(query, profile, False),
                }
        elif isinstance(model, LearnedPredictor):
            # Learned artifacts predict from timing-record coordinates;
            # the queries become synthetic records (measurements unused —
            # the sentinel 1.0 is never read by predict).
            records = [
                TimingRecord(
                    model=resolved[i][0].network,
                    device=resolved[i][0].device,
                    image_size=resolved[i][0].image,
                    batch=resolved[i][0].batch,
                    nodes=resolved[i][0].nodes,
                    devices=resolved[i][0].devices,
                    scenario="inference",
                    features=resolved[i][2],
                    t_fwd=1.0,
                )
                for i in plain
            ]
            times = model.predict(records).tolist()
            training = model.target == "total"
            for j, i in enumerate(plain):
                query, profile, features, fused = resolved[i]
                t = times[j]
                scale = query.devices if training else 1
                predictions[i] = {
                    "kind": entry.kind,
                    "target": model.target,
                    "network": query.network,
                    "image": query.image,
                    "batch": query.batch,
                    "nodes": query.nodes,
                    "devices": query.devices,
                    "fuse": fused,
                    "t_seconds": t,
                    "throughput": query.batch * scale / t,
                    "warnings": artifact_prediction_warnings(
                        model, records[j : j + 1], factor
                    )
                    + _memory_note(query, profile, training),
                }
        else:  # pragma: no cover - SERVABLE_KINDS restricts model types
            raise ProtocolError(
                f"cannot predict with {type(model).__name__}"
            )

    body: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "model": entry.name,
        "kind": entry.kind,
    }
    if request.batched:
        body["count"] = len(predictions)
        body["predictions"] = predictions
    else:
        body["prediction"] = predictions[0]
    return body
