"""Versioned on-disk registry of fitted model artifacts.

The prediction server never holds coefficients of its own — it serves
whatever v2 artifacts (``repro fit``, ``docs/static-analysis.md``) live in
a registry directory::

    registry/
        registry.json       # optional manifest (names, device tags)
        default.json        # artifacts saved by `repro fit -o ...`
        step-a100.json

Without a manifest every ``*.json`` file is an artifact named by its stem.
A manifest pins the serveable set explicitly and may tag each artifact
with the device preset its campaign ran on::

    {"version": 1,
     "models": {"default": {"file": "default.json", "device": "a100-80gb"}}}

Hot reload: every lookup re-stats the artifact file and reloads it when
``(mtime_ns, size)`` changed, so ``repro fit`` can replace a model under a
running server without a restart.  Version-1 artifacts (no embedded audit
block, no fitted feature ranges) are **rejected at serve time** — a served
prediction must be able to carry FIT004 extrapolation warnings, which
requires the v2 ``feature_ranges``.  ``load_model`` itself still accepts
v1 for offline use; the rejection is a serving policy, not a format change.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.persistence import model_from_dict

#: Manifest schema version understood by this registry.
MANIFEST_VERSION = 1

#: Manifest filename inside a registry directory.
MANIFEST_NAME = "registry.json"

#: Artifact kinds the predict endpoint can answer queries against.
SERVABLE_KINDS = (
    "forward", "backward", "training_step",
    "resperfnet", "perfseer", "prenet",
)


class RegistryError(RuntimeError):
    """A registry directory, manifest, or artifact is unusable."""


class UnknownArtifactError(KeyError):
    """Lookup of a name the registry does not (or no longer does) hold."""


@dataclass
class ArtifactEntry:
    """One loaded artifact plus the stat identity it was loaded from."""

    name: str
    path: Path
    kind: str
    format: int
    model: object
    device: str = ""
    mtime_ns: int = 0
    size: int = 0
    #: Error/warning counts of the audit block embedded at save time.
    audit_errors: int = 0
    audit_warnings: int = 0
    #: How many times this artifact was hot-reloaded after a file change.
    reloads: int = 0

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary for ``/healthz``."""
        return {
            "kind": self.kind,
            "format": self.format,
            "device": self.device,
            "servable": self.kind in SERVABLE_KINDS,
            "audit": {
                "errors": self.audit_errors,
                "warnings": self.audit_warnings,
            },
            "reloads": self.reloads,
        }


def _load_artifact(name: str, path: Path, device: str = "") -> ArtifactEntry:
    """Parse and validate one artifact file (serve-time policy applied)."""
    try:
        state = json.loads(path.read_text())
    except OSError as exc:
        raise RegistryError(f"artifact {name!r}: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise RegistryError(f"artifact {name!r}: {path} is not JSON: {exc}")
    fmt = state.get("format")
    if fmt == 1:
        raise RegistryError(
            f"artifact {name!r}: {path} is a v1 model document; serving "
            "requires v2 (fitted feature ranges for FIT004 warnings) — "
            "refit it with `repro fit`"
        )
    try:
        model = model_from_dict(state)
    except (KeyError, ValueError, TypeError) as exc:
        raise RegistryError(f"artifact {name!r}: {path}: {exc}")
    audit = state.get("audit") or {}
    stat = path.stat()
    return ArtifactEntry(
        name=name,
        path=path,
        kind=str(state.get("kind", "")),
        format=int(fmt),
        model=model,
        device=device,
        mtime_ns=stat.st_mtime_ns,
        size=stat.st_size,
        audit_errors=int(audit.get("errors", 0)),
        audit_warnings=int(audit.get("warnings", 0)),
    )


@dataclass
class RegistrySnapshot:
    """Point-in-time view of the registry for health reporting."""

    root: str
    models: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Artifacts that exist on disk but refused to load, with the reason.
    failed: dict[str, str] = field(default_factory=dict)
    reloads: int = 0


class ModelRegistry:
    """Thread-safe directory of fitted model artifacts with hot reload."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not self.root.is_dir():
            raise RegistryError(f"registry root {self.root} is not a directory")
        self._lock = threading.Lock()
        self._entries: dict[str, ArtifactEntry] = {}
        self._failed: dict[str, str] = {}
        self._reloads = 0
        self.refresh()
        if not self._entries and not self._failed:
            raise RegistryError(
                f"registry {self.root} holds no model artifacts; run "
                "`repro fit -o {dir}/default.json` first"
            )

    # -- discovery ---------------------------------------------------------

    def _declared(self) -> dict[str, tuple[Path, str]]:
        """name -> (path, device tag) from the manifest or a directory scan."""
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            try:
                doc = json.loads(manifest.read_text())
            except json.JSONDecodeError as exc:
                raise RegistryError(f"manifest {manifest} is not JSON: {exc}")
            if doc.get("version") != MANIFEST_VERSION:
                raise RegistryError(
                    f"manifest {manifest} has version {doc.get('version')!r}; "
                    f"this registry understands {MANIFEST_VERSION}"
                )
            declared = {}
            for name, spec in dict(doc.get("models", {})).items():
                declared[str(name)] = (
                    self.root / str(spec["file"]),
                    str(spec.get("device", "")),
                )
            return declared
        return {
            path.stem: (path, "")
            for path in sorted(self.root.glob("*.json"))
            if path.name != MANIFEST_NAME
        }

    def refresh(self) -> None:
        """Re-scan the directory: pick up added, changed and removed
        artifacts.  Load failures are recorded, not raised — one broken
        artifact must not take down serving of the healthy ones.

        Artifact files are stat'd and parsed *outside* the lock (disk
        latency must not stall every concurrent ``get()`` behind
        ``_lock``); results are installed in a single critical section.
        Two threads may race to load the same file change — the loser's
        copy is discarded by the stat-identity check in
        :meth:`_install_locked`, keeping reload counts exact."""
        declared = self._declared()
        with self._lock:
            current = {
                name: (entry.path, entry.mtime_ns, entry.size)
                for name, entry in self._entries.items()
            }
        loaded: dict[str, ArtifactEntry] = {}
        fresh_failures: dict[str, str] = {}
        unchanged: set[str] = set()
        for name, (path, device) in declared.items():
            # Per-artifact try blocks are the registry's failure-isolation
            # contract: one unreadable or corrupt artifact must not take
            # the rest of the manifest down, and each failure message must
            # name its artifact.  The loop is bounded by the manifest size
            # (a handful of models), not by request volume.
            try:  # repro-lint: disable=PERF008
                stat = path.stat()
            except OSError as exc:
                fresh_failures[name] = (
                    f"artifact {name!r}: cannot stat {path}: {exc}"
                )
                continue
            if current.get(name) == (path, stat.st_mtime_ns, stat.st_size):
                unchanged.add(name)
                continue
            try:  # repro-lint: disable=PERF008
                loaded[name] = _load_artifact(name, path, device)
            except RegistryError as exc:
                fresh_failures[name] = str(exc)
        with self._lock:
            for name in list(self._entries):
                if name not in declared or name in fresh_failures:
                    # Re-validated here: a name that failed this scan (or
                    # vanished from the manifest) is dropped even if a
                    # concurrent get() reloaded it meanwhile.
                    del self._entries[name]  # repro-lint: disable=CON005
            self._failed = fresh_failures
            for name, entry in loaded.items():
                self._install_locked(name, entry)

    def _install_locked(self, name: str, entry: ArtifactEntry) -> ArtifactEntry:
        """Install a freshly-loaded entry under ``_lock``, keeping reload
        accounting exact when loads raced: if the incumbent already has
        this entry's stat identity, a concurrent load of the same file
        change won — keep it and discard ours."""
        current = self._entries.get(name)
        if current is not None:
            if (current.path, current.mtime_ns, current.size) == (
                entry.path, entry.mtime_ns, entry.size
            ):
                return current
            entry.reloads = current.reloads + 1
            self._reloads += 1
        self._entries[name] = entry
        self._failed.pop(name, None)
        return entry

    # -- lookup ------------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def get(self, name: str) -> ArtifactEntry:
        """The current entry for ``name``, hot-reloading on file change.

        The stat/parse happens outside ``_lock`` (see :meth:`refresh`);
        the result is installed with :meth:`_install_locked`, whose
        stat-identity check re-validates against concurrent reloads.

        Raises :class:`UnknownArtifactError` for names the registry never
        held and :class:`RegistryError` when the artifact exists but will
        not serve (v1 document, unreadable file, parse failure).
        """
        with self._lock:
            entry = self._entries.get(name)
        if entry is not None:
            try:
                stat = entry.path.stat()
            except OSError as exc:
                self._drop(name, entry,
                           f"artifact {name!r}: cannot stat "
                           f"{entry.path}: {exc}")
                raise RegistryError(
                    f"artifact {name!r}: cannot stat {entry.path}: {exc}"
                )
            if (entry.mtime_ns, entry.size) == (
                stat.st_mtime_ns, stat.st_size
            ):
                return entry
            try:
                fresh = _load_artifact(name, entry.path, entry.device)
            except RegistryError as exc:
                self._drop(name, entry, str(exc))
                raise
            with self._lock:
                return self._install_locked(name, fresh)
        # Unknown or previously-failed name: the artifact may have been
        # added (or repaired) after the failure was recorded — rescan
        # before giving up so a fixed file recovers without a restart.
        self.refresh()
        with self._lock:
            if name in self._entries:
                return self._entries[name]
            if name in self._failed:
                raise RegistryError(self._failed[name])
        raise UnknownArtifactError(name)

    def _drop(self, name: str, stale: ArtifactEntry, reason: str) -> None:
        """Record a load failure for ``name``, evicting the cached entry
        only if it is still the copy we failed to replace — a concurrent
        thread may have installed a healthy reload meanwhile."""
        with self._lock:
            if self._entries.get(name) is stale:
                del self._entries[name]
            self._failed[name] = reason

    def default_name(self) -> str:
        """The artifact a request without ``"model"`` targets: ``default``
        when present, else the only artifact, else ambiguous (error)."""
        names = self.names()
        if not names:
            # Everything may have failed and since been repaired; retry.
            self.refresh()
            names = self.names()
        if "default" in names:
            return "default"
        if len(names) == 1:
            return names[0]
        raise UnknownArtifactError(
            "request names no model and the registry holds "
            f"{len(names)}: {', '.join(names)}"
        )

    @property
    def reloads(self) -> int:
        """Total hot reloads performed since startup (monotonic)."""
        with self._lock:
            return self._reloads

    def snapshot(self) -> RegistrySnapshot:
        with self._lock:
            return RegistrySnapshot(
                root=str(self.root),
                models={
                    name: entry.describe()
                    for name, entry in sorted(self._entries.items())
                },
                failed=dict(self._failed),
                reloads=self._reloads,
            )


def write_manifest(
    root: str | Path, models: dict[str, dict[str, str]]
) -> Path:
    """Write a registry manifest; ``models`` maps name -> {file, device?}."""
    path = Path(root) / MANIFEST_NAME
    path.write_text(
        json.dumps(
            {"version": MANIFEST_VERSION, "models": models},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path
