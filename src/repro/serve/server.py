"""Threaded stdlib HTTP server for prediction-as-a-service.

``repro serve`` in front of :mod:`repro.serve.protocol`: a
:class:`~http.server.ThreadingHTTPServer` answering

* ``POST /predict`` — single or batched prediction queries (JSON);
* ``GET  /healthz`` — liveness plus the registry snapshot (loaded and
  failed artifacts, audit summaries);
* ``GET  /metrics`` — monotonic work counters (JSON by default,
  Prometheus text exposition with ``Accept: text/plain``).

Counters ride on the trace subsystem's :class:`~repro.trace.Tracer` — the
same ``name -> float`` counter shape campaigns persist to store manifests
— guarded by one lock so concurrent request threads never lose updates
and ``/metrics`` reads are consistent snapshots.  Simulated prediction
math stays deterministic; only observability (latency in the bench
driver) ever touches a real clock, via ``time.perf_counter``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.caching import CacheStats
from repro.serve.protocol import (
    DEFAULT_FEATURE_CACHE,
    PROTOCOL_VERSION,
    FeatureCache,
    PredictRequest,
    ProtocolError,
    answer_request,
)
from repro.serve.registry import (
    ModelRegistry,
    RegistryError,
    UnknownArtifactError,
)
from repro.trace import Tracer

#: Largest request body the server will read, bytes (64 MiB of JSON is
#: far beyond any sane query batch; the cap bounds memory per request).
MAX_BODY_BYTES = 64 * 1024 * 1024


class PredictionServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`ModelRegistry`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: ModelRegistry,
        *,
        default_transform: str = "",
        domain_factor: float | None = 10.0,
        feature_cache_size: int = DEFAULT_FEATURE_CACHE,
    ) -> None:
        super().__init__(address, PredictionHandler)
        self.registry = registry
        self.default_transform = default_transform
        self.domain_factor = domain_factor
        self.features = FeatureCache(maxsize=feature_cache_size)
        self.tracer = Tracer()
        self._counter_lock = threading.Lock()

    # -- counters ----------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Thread-safe monotonic counter increment."""
        with self._counter_lock:
            self.tracer.count(name, value)

    def metrics(self) -> dict[str, Any]:
        """The /metrics payload: counters + cache + registry state."""
        with self._counter_lock:
            counters = self.tracer.counters
        stats: CacheStats = self.features.stats()
        return {
            "counters": counters,
            "feature_cache": {**stats.to_dict(), "size": len(self.features)},
            "registry": {"reloads": self.registry.reloads},
        }

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, bench mode)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests; all state lives on the server."""

    server_version = f"repro-serve/{PROTOCOL_VERSION}"
    protocol_version = "HTTP/1.1"

    server: PredictionServer  # narrowed for type checkers

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging; /metrics is the signal."""

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send_body(status, body, "application/json")

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.count(f"http_{status}_total")

    def _error(self, status: int, message: str) -> None:
        self.server.count("errors_total")
        self._send_json(status, {"error": message, "status": status})

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.server.count("http_requests_total")
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._healthz()
        elif path == "/metrics":
            self._metrics()
        elif path == "/predict":
            self._error(405, "use POST /predict")
        else:
            self._error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.server.count("http_requests_total")
        path = self.path.split("?", 1)[0]
        if path != "/predict":
            self._error(
                405 if path in ("/healthz", "/metrics") else 404,
                f"cannot POST to {path!r}",
            )
            return
        try:
            self._predict()
        except ProtocolError as exc:
            self._error(exc.status, str(exc))
        except UnknownArtifactError as exc:
            self._error(404, f"unknown model artifact {exc.args[0]!r}")
        except RegistryError as exc:
            # The artifact exists but refuses to serve (v1 document,
            # unreadable file): the request conflicts with registry state.
            self._error(409, str(exc))
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._error(500, f"internal error: {exc}")

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            n = int(length)
        except (TypeError, ValueError):
            raise ProtocolError("Content-Length header is required", 411)
        if n < 0 or n > MAX_BODY_BYTES:
            raise ProtocolError(f"request body of {n} bytes refused", 413)
        return self.rfile.read(n)

    def _predict(self) -> None:
        server = self.server
        server.count("predict_requests_total")
        body = self._read_body()
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}")
        request = PredictRequest.parse(parsed)
        name = (
            request.model
            if request.model is not None
            else server.registry.default_name()
        )
        entry = server.registry.get(name)
        response = answer_request(
            request,
            entry,
            server.features,
            default_transform=server.default_transform,
            default_domain_factor=server.domain_factor,
        )
        server.count("predictions_total", float(len(request.queries)))
        n_warn = (
            sum(
                len(p.get("warnings", ()))
                for p in response.get("predictions", ())
            )
            + len(response.get("prediction", {}).get("warnings", ()))
        )
        if n_warn:
            server.count("prediction_warnings_total", float(n_warn))
        self._send_json(200, response)

    def _healthz(self) -> None:
        snapshot = self.server.registry.snapshot()
        self._send_json(
            200,
            {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "registry": snapshot.root,
                "models": snapshot.models,
                "failed": snapshot.failed,
            },
        )

    def _metrics(self) -> None:
        payload = self.server.metrics()
        accept = self.headers.get("Accept", "")
        if "text/plain" in accept:
            from repro.trace.export import render_prometheus

            flat = dict(payload["counters"])
            for key, value in payload["feature_cache"].items():
                flat[f"feature_cache_{key}"] = float(value)
            flat["registry_reloads"] = float(payload["registry"]["reloads"])
            self._send_body(
                200,
                render_prometheus(flat).encode(),
                "text/plain; version=0.0.4",
            )
        else:
            self._send_json(200, payload)


def make_server(
    registry: ModelRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    fuse: bool = False,
    domain_factor: float | None = 10.0,
    feature_cache_size: int = DEFAULT_FEATURE_CACHE,
) -> PredictionServer:
    """Construct (but do not start) a server; ``port=0`` picks a free one."""
    return PredictionServer(
        (host, port),
        registry,
        default_transform="inference" if fuse else "",
        domain_factor=domain_factor,
        feature_cache_size=feature_cache_size,
    )
