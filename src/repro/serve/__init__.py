"""Prediction-as-a-service: the `repro serve` HTTP layer.

The paper's end product is a fitted predictor you *query*; this package
is the long-running service surface over it (ROADMAP item 1).  Four
modules, stdlib-only (``http.server`` threading — no new dependencies):

* :mod:`repro.serve.registry` — versioned directory of v2 model
  artifacts with hot reload on file change and serve-time rejection of
  v1 documents;
* :mod:`repro.serve.protocol` — the JSON request/response contract and
  the vectorized batched predict (bit-equal to sequential evaluation);
* :mod:`repro.serve.server` — the threaded HTTP server with
  ``/predict``, ``/healthz`` and ``/metrics`` (trace-counter backed);
* :mod:`repro.serve.bench` — the deterministic load generator behind
  ``repro serve --bench`` and the ``BENCH_serve.json`` schema.

See ``docs/serving.md`` for the protocol and registry layout.
"""

from repro.serve.bench import (
    BENCH_SCHEMA,
    BenchConfig,
    bench_registry,
    build_mix,
    run_bench,
    validate_bench_payload,
    write_bench,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    FeatureCache,
    PredictQuery,
    PredictRequest,
    ProtocolError,
    answer_request,
    predict_forward_batch,
    predict_step_batch,
)
from repro.serve.registry import (
    ArtifactEntry,
    ModelRegistry,
    RegistryError,
    UnknownArtifactError,
    write_manifest,
)
from repro.serve.server import PredictionServer, make_server

__all__ = [
    "BENCH_SCHEMA",
    "PROTOCOL_VERSION",
    "ArtifactEntry",
    "BenchConfig",
    "FeatureCache",
    "ModelRegistry",
    "PredictQuery",
    "PredictRequest",
    "PredictionServer",
    "ProtocolError",
    "RegistryError",
    "UnknownArtifactError",
    "answer_request",
    "bench_registry",
    "build_mix",
    "make_server",
    "predict_forward_batch",
    "predict_step_batch",
    "run_bench",
    "validate_bench_payload",
    "write_bench",
    "write_manifest",
]
