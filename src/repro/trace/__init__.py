"""Deterministic tracing and metrics for the simulator stack.

Observability layer over :mod:`repro.hardware` and :mod:`repro.distributed`:
nested spans (``campaign`` → ``model`` → ``phase`` → ``layer``) on a
simulated clock, plus work counters (FLOPs executed, bytes moved,
all-reduce volume, cache hits).  Tracing is opt-in and zero-overhead when
off; when on, traces are byte-identical across worker counts and resume
splits because every duration derives from the point-identity seeding of
:mod:`repro.hardware.noise`.

The single-measurement driver behind ``repro trace`` lives in
:mod:`repro.trace.run` (imported lazily to avoid pulling the zoo and
hardware stacks into this package's import).  See
``docs/observability.md`` for the span taxonomy and counter catalogue.
"""

from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceError,
    Tracer,
    merge_counters,
    record_layer_phase,
)
from repro.trace.export import (
    chrome_json,
    chrome_payload,
    render_prometheus,
    render_tree,
    to_chrome,
    to_json,
    write_chrome,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceError",
    "merge_counters",
    "record_layer_phase",
    "render_prometheus",
    "render_tree",
    "to_json",
    "to_chrome",
    "chrome_payload",
    "chrome_json",
    "write_chrome",
]
