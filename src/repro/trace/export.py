"""Trace exporters: text tree, JSON, and Chrome tracing format.

Three views of one :class:`~repro.trace.tracer.Tracer`:

* :func:`render_tree` — an indented plain-text tree with per-span
  durations, for terminals and test failure messages;
* :func:`to_json` — the full span tree plus counter totals as JSON, the
  lossless machine-readable form;
* :func:`to_chrome` / :func:`write_chrome` — Chrome tracing "X" events
  (microsecond timestamps) loadable in ``chrome://tracing`` and Perfetto,
  the same tooling Horovod's timeline targets.  Compute and communication
  spans land on separate rows via their ``track``.

All three are pure functions of the span tree, so a deterministic trace
yields byte-identical exports.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.trace.tracer import Span, Tracer

#: Chrome trace row ("thread") ids per span track.
_TRACK_TIDS = {"compute": 0, "comm": 1}

_EXPORT_VERSION = 1


def _roots(trace: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(trace, Tracer):
        trace.require_closed()
        return trace.roots
    return list(trace)


def _counters(trace: Tracer | Iterable[Span]) -> dict[str, float]:
    return trace.counters if isinstance(trace, Tracer) else {}


# -- text tree ---------------------------------------------------------------


def render_tree(trace: Tracer | Iterable[Span]) -> str:
    """Indented text rendering of the span tree, durations in ms."""
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        label = "  " * depth + span.name
        lines.append(
            f"{label:<48s} {span.duration * 1e3:>12.6f} ms  {span.category}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for root in _roots(trace):
        emit(root, 0)
    counters = _counters(trace)
    if counters:
        totals = ", ".join(
            f"{name}={value:.6g}" for name, value in sorted(counters.items())
        )
        lines.append(f"counters: {totals}")
    return "\n".join(lines)


# -- JSON --------------------------------------------------------------------


def to_json(trace: Tracer | Iterable[Span]) -> str:
    """The span tree and counter totals as a JSON document."""
    payload = {
        "version": _EXPORT_VERSION,
        "counters": dict(sorted(_counters(trace).items())),
        "spans": [root.to_dict() for root in _roots(trace)],
    }
    return json.dumps(payload, indent=2)


# -- Chrome tracing format ---------------------------------------------------


def _chrome_events(span: Span, offset_us: float) -> Iterator[dict]:
    start_us = offset_us + span.start * 1e6
    yield {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": start_us,
        "dur": span.duration * 1e6,
        "pid": 0,
        "tid": _TRACK_TIDS.get(span.track, 0),
        "args": dict(span.attrs),
    }
    for child in span.children:
        yield from _chrome_events(child, start_us)


def to_chrome(trace: Tracer | Iterable[Span]) -> list[dict]:
    """Complete-event ("X") list in Chrome tracing format, µs timestamps."""
    events: list[dict] = []
    for root in _roots(trace):
        events.extend(_chrome_events(root, 0.0))
    return events


def chrome_payload(events: list[dict]) -> dict:
    """Wrap a Chrome event list in the loadable top-level object."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_json(trace: Tracer | Iterable[Span]) -> str:
    """A ``chrome://tracing`` / Perfetto-loadable JSON document."""
    return json.dumps(chrome_payload(to_chrome(trace)), indent=2)


def write_chrome(trace: Tracer | Iterable[Span], path: str | Path) -> int:
    """Write the Chrome-format trace; returns the number of events."""
    events = to_chrome(trace)
    Path(path).write_text(json.dumps(chrome_payload(events)))
    return len(events)


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def render_prometheus(
    counters: Mapping[str, float], prefix: str = "repro_"
) -> str:
    """Counter totals in the Prometheus text exposition format.

    The serve layer's ``/metrics`` endpoint answers ``Accept: text/plain``
    with this rendering, so any Prometheus-compatible scraper can watch a
    prediction server without a JSON adapter.  Counter names are
    sanitised to the metric charset and emitted sorted, making the output
    a pure function of the counter dict.
    """
    lines = []
    for name in sorted(counters):
        metric = prefix + _PROM_BAD_CHARS.sub("_", name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(counters[name]):g}")
    return "\n".join(lines) + "\n" if lines else ""
