"""Single-measurement tracing driver — the engine behind ``repro trace``.

Builds one zoo model, runs one simulated measurement under a live
:class:`~repro.trace.tracer.Tracer`, and returns the closed tracer for
export.  Kept out of :mod:`repro.trace`'s package ``__init__`` on purpose:
this module pulls in the zoo and hardware stacks, which the core span
machinery must stay importable without.
"""

from __future__ import annotations

from repro.distributed.cluster import ClusterSpec
from repro.distributed.trainer import DistributedTrainer
from repro.hardware.backend import get_backend
from repro.hardware.device import DeviceSpec
from repro.hardware.executor import SimulatedExecutor
from repro.graph.passes import default_inference_pipeline
from repro.hardware.roofline import zoo_profile
from repro.trace.tracer import Tracer
from repro.zoo.registry import get_entry

#: Measurement phases ``repro trace`` understands.
TRACE_PHASES = ("inference", "step", "distributed")


def trace_model(
    model: str,
    device: DeviceSpec,
    image_size: int = 224,
    batch: int = 1,
    phase: str = "inference",
    nodes: int = 1,
    gpus_per_node: int = 4,
    seed: int = 0,
    rep: int = 0,
    fuse: bool = False,
    backend: str = "",
) -> Tracer:
    """Trace one simulated measurement of ``model``; returns the tracer.

    ``phase`` selects what is measured: a forward pass (``inference``), a
    single-device training step (``step``), or a data-parallel training
    step on a ``nodes × gpus_per_node`` cluster (``distributed``).  The
    image size is clamped up to the model's architectural minimum, the
    same courtesy ``repro verify`` extends.  ``fuse`` runs the inference
    fusion pipeline first, so spans carry fused names such as
    ``conv2d_0+batchnorm2d_0+activation_0``.  ``backend`` names an
    execution backend from the registry (``""`` = default roofline).
    Raises :class:`~repro.hardware.memory.OutOfDeviceMemory` when the
    configuration does not fit the device, and :class:`KeyError` for an
    unknown model.
    """
    if phase not in TRACE_PHASES:
        raise ValueError(f"unknown phase {phase!r}; one of {TRACE_PHASES}")
    image = max(image_size, get_entry(model).min_image_size)
    pipeline = default_inference_pipeline() if fuse else None
    profile = zoo_profile(model, image, pipeline)
    exec_backend = get_backend(backend, device)

    tracer = Tracer()
    tracer.begin(
        f"{model}@{image} b={batch}",
        category="model",
        attrs={
            "model": model,
            "image_size": image,
            "batch": batch,
            "device": device.name,
            "phase": phase,
            "seed": seed,
            "rep": rep,
            **({"backend": backend} if backend else {}),
        },
    )
    if phase == "inference":
        executor = SimulatedExecutor(seed=seed, backend=exec_backend)
        executor.measure_inference(profile, batch, rep=rep, tracer=tracer)
    elif phase == "step":
        executor = SimulatedExecutor(seed=seed, backend=exec_backend)
        executor.measure_training_step(profile, batch, rep=rep, tracer=tracer)
    else:
        cluster = ClusterSpec(
            nodes=nodes, gpus_per_node=gpus_per_node, device=device
        )
        trainer = DistributedTrainer(cluster, seed=seed, backend=exec_backend)
        trainer.measure_step(profile, batch, rep=rep, tracer=tracer)
    tracer.end()
    tracer.require_closed()
    return tracer
