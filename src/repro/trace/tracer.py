"""Structured spans and counters on a simulated clock.

The simulator stack reports aggregate phase times; this module records
*where* that simulated time goes.  A :class:`Tracer` holds a tree of
:class:`Span` s — ``campaign`` → ``model`` → ``phase`` → ``layer`` — whose
timestamps come from a simulated clock the instrumented code advances
explicitly, never from the wall clock.  Because every duration is a pure
function of the measurement identity (the same seeding contract as
:mod:`repro.hardware.noise`), two traces of the same configuration are
byte-identical regardless of worker count, execution order, or resume
splits.

Exactness contract
------------------
Span starts are stored *relative to the parent span*, and a parent's
elapsed-time accumulator is updated child-by-child in emission order.  Two
invariants therefore hold with exact float equality, not approximately:

* consecutive children tile their parent: ``child[i+1].start ==
  child[i].start + child[i].duration`` as evaluated left to right;
* when a phase is closed with an explicit measured total via
  :func:`record_layer_phase`, the left-to-right sum of its children's
  durations equals that total bit-for-bit (the closing ``overhead`` span
  absorbs the remainder, and Sterbenz's lemma makes the telescoped sum
  exact).

Tracing is opt-in: the instrumented hot paths take ``tracer=None`` and a
single predicate guard (`tracer is not None and tracer.enabled`) keeps the
disabled path free of any per-layer Python work.  :data:`NULL_TRACER` is a
shared no-op instance for callers that prefer unconditional calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence


class TraceError(RuntimeError):
    """Structural misuse of a tracer (unbalanced spans, negative time)."""


@dataclass
class Span:
    """One named interval of simulated time.

    ``start`` is seconds since the *parent* span began (roots: since the
    trace began); ``duration`` is the span's extent in simulated seconds.
    ``track`` groups spans into Chrome-trace rows (``compute`` vs
    ``comm``); ``attrs`` carries per-span measurements such as the FLOPs a
    layer executed.
    """

    name: str
    category: str
    start: float = 0.0
    duration: float = 0.0
    track: str = "compute"
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def end(self) -> float:
        """Parent-relative end time (display only; may round)."""
        return self.start + self.duration

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order iteration over this span and descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, category: str) -> list["Span"]:
        """All descendant spans (including self) of one category."""
        return [s for s in self.walk() if s.category == category]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Records nested spans and counters on a simulated clock.

    Usage::

        tracer = Tracer()
        tracer.begin("alexnet@224 b=1", category="model")
        tracer.begin("forward", category="phase")
        tracer.add("conv1", 1.2e-3, category="layer")
        tracer.count("flops", 2.1e8)
        tracer.end()            # duration = sum of children
        tracer.end(total)       # or pin an explicit measured total
    """

    enabled = True

    def __init__(self) -> None:
        # Sentinel root: never exported, its children are the trace roots.
        self._root = Span("<root>", category="root")
        self._elapsed: dict[int, float] = {id(self._root): 0.0}
        self._stack: list[Span] = [self._root]
        self._counters: dict[str, float] = {}

    # -- span lifecycle ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack) - 1

    @property
    def roots(self) -> list[Span]:
        """Top-level spans recorded so far."""
        return self._root.children

    def elapsed(self) -> float:
        """Simulated seconds accumulated inside the innermost open span."""
        return self._elapsed[id(self._stack[-1])]

    def begin(
        self,
        name: str,
        category: str,
        track: str = "compute",
        attrs: Mapping | None = None,
    ) -> Span:
        """Open a child span starting at the current simulated clock."""
        parent = self._stack[-1]
        span = Span(
            name=name,
            category=category,
            start=self._elapsed[id(parent)],
            track=track,
            attrs=dict(attrs) if attrs else {},
        )
        parent.children.append(span)
        self._stack.append(span)
        self._elapsed[id(span)] = 0.0
        return span

    def end(self, duration: float | None = None) -> Span:
        """Close the innermost span.

        Without ``duration`` the span extends to the time its children and
        :meth:`advance` calls accumulated.  With an explicit ``duration``
        (a measured phase total) the span is pinned to exactly that value;
        it must not be shorter than the accumulated child time.
        """
        if len(self._stack) == 1:
            raise TraceError("end() without a matching begin()")
        span = self._stack.pop()
        accumulated = self._elapsed.pop(id(span))
        if duration is None:
            span.duration = accumulated
        else:
            if duration < accumulated and not _within_ulps(
                duration, accumulated
            ):
                raise TraceError(
                    f"span {span.name!r}: explicit duration {duration!r} is "
                    f"shorter than its children's {accumulated!r}"
                )
            span.duration = duration
        # The parent's clock jumps to this child's end as evaluated from
        # the child's own start — this is what makes a parent's elapsed
        # time the exact left-to-right sum of its children's durations.
        parent = self._stack[-1]
        self._elapsed[id(parent)] = span.start + span.duration
        return span

    def advance(self, seconds: float) -> None:
        """Move the simulated clock of the innermost open span forward."""
        if seconds < 0.0:
            raise TraceError(f"cannot advance time by {seconds!r}")
        span = self._stack[-1]
        self._elapsed[id(span)] = self._elapsed[id(span)] + seconds

    def add(
        self,
        name: str,
        duration: float,
        category: str,
        track: str = "compute",
        attrs: Mapping | None = None,
    ) -> Span:
        """Record one complete leaf span at the current clock."""
        self.begin(name, category, track=track, attrs=attrs)
        self.advance(duration)
        return self.end()

    def add_at(
        self,
        name: str,
        start: float,
        duration: float,
        category: str,
        track: str = "compute",
        attrs: Mapping | None = None,
    ) -> Span:
        """Record a completed child span at an explicit parent-relative
        offset without moving the clock — for work that overlaps the
        sequential timeline, like all-reduces hidden behind backward."""
        if start < 0.0:
            raise TraceError(f"span {name!r}: negative start {start!r}")
        if duration < 0.0:
            raise TraceError(f"span {name!r}: negative duration {duration!r}")
        span = Span(
            name=name,
            category=category,
            start=start,
            duration=duration,
            track=track,
            attrs=dict(attrs) if attrs else {},
        )
        self._stack[-1].children.append(span)
        return span

    def require_closed(self) -> None:
        """Raise unless every begun span has been ended (export guard)."""
        if len(self._stack) != 1:
            names = ", ".join(repr(s.name) for s in self._stack[1:])
            raise TraceError(f"unclosed span(s): {names}")

    # -- counters ----------------------------------------------------------

    def count(self, name: str, value: float) -> None:
        """Accumulate a named counter (FLOPs, bytes, allreduce volume…)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    @property
    def counters(self) -> dict[str, float]:
        """Cumulative counter totals recorded so far."""
        return dict(self._counters)


class NullTracer(Tracer):
    """The default, zero-overhead tracer: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def begin(self, name, category, track="compute", attrs=None):  # noqa: D102
        return self._root

    def end(self, duration=None):
        return self._root

    def advance(self, seconds):
        return None

    def add(self, name, duration, category, track="compute", attrs=None):
        return self._root

    def add_at(self, name, start, duration, category, track="compute",
               attrs=None):
        return self._root

    def count(self, name, value):
        return None


#: Shared no-op tracer for call sites that prefer unconditional calls.
NULL_TRACER = NullTracer()


def _within_ulps(a: float, b: float, ulps: int = 4) -> bool:
    """True when two floats are within a few representable steps — used
    only to tolerate benign rounding in explicit-duration validation."""
    diff = abs(a - b)
    scale = max(abs(a), abs(b))
    return diff <= ulps * math.ulp(scale) if scale else True


def merge_counters(
    into: dict[str, float], delta: Mapping[str, float]
) -> dict[str, float]:
    """Accumulate one counter delta into a running total, in place."""
    for name, value in delta.items():
        into[name] = into.get(name, 0.0) + value
    return into


def record_layer_phase(
    tracer: Tracer,
    name: str,
    layer_names: Sequence[str],
    durations: Sequence[float],
    flops: Sequence[float],
    nbytes: Sequence[float],
    total: float,
) -> Span:
    """Emit one phase span whose layer children tile exactly ``[0, total]``.

    ``durations`` are the per-layer simulated times (noise included);
    their left-to-right sum is at most ``total`` and the gap — framework
    base overhead plus float dust — becomes a closing ``overhead`` span,
    so the children's durations sum to ``total`` with exact float
    equality.  ``flops``/``nbytes`` are per-layer work counters, recorded
    on each layer span and accumulated into the tracer's totals.
    """
    tracer.begin(name, category="phase")
    for i, layer_name in enumerate(layer_names):
        f = float(flops[i])
        b = float(nbytes[i])
        tracer.add(
            layer_name,
            float(durations[i]),
            category="layer",
            attrs={"flops": f, "bytes": b},
        )
        tracer.count("flops", f)
        tracer.count("bytes", b)
    remainder = total - tracer.elapsed()
    if remainder < 0.0:
        raise TraceError(
            f"phase {name!r}: layer spans overrun the measured total by "
            f"{-remainder!r} s"
        )
    tracer.add("overhead", remainder, category="overhead")
    return tracer.end(total)
